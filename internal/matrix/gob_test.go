package matrix

import (
	"bytes"
	"encoding/hex"
	"math"
	"math/rand"
	"testing"
)

// blockSlabGolden is the checked-in GobEncode image of a 2×3 Block at
// coordinates (1,2) holding {1, -0.5, +Inf, 2.75, NaN(payload 0xabc),
// 0}. It pins the slab wire layout: if encoding drifts, recorded wire
// frames and checkpoints stop decoding, and this test fails first.
const blockSlabGolden = "b1010102020300000000000000f03f000000000000e0bf000000000000f07f0000000000000640bc0a00000000f87f0000000000000000"

// denseSlabGolden pins the Dense layout: 2×2 {1, 2, 3, 4.5}.
const denseSlabGolden = "d1010202000000000000f03f000000000000004000000000000008400000000000001240"

func goldenBlock() *Block {
	b := NewBlock(1, 2, 2, 3)
	copy(b.Data, []float64{1, -0.5, math.Inf(1), 2.75, math.Float64frombits(0x7ff8000000000abc), 0})
	return b
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestBlockSlabGolden(t *testing.T) {
	want := goldenBlock()
	enc, err := want.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(enc); got != blockSlabGolden {
		t.Fatalf("slab layout drifted:\n got %s\nwant %s", got, blockSlabGolden)
	}
	raw, err := hex.DecodeString(blockSlabGolden)
	if err != nil {
		t.Fatal(err)
	}
	var got Block
	if err := got.GobDecode(raw); err != nil {
		t.Fatal(err)
	}
	if got.BR != 1 || got.BC != 2 || got.Rows != 2 || got.Cols != 3 {
		t.Fatalf("decoded shape %+v", got)
	}
	if !sameBits(got.Data, want.Data) {
		t.Fatalf("decoded data %v, want bit-exact %v", got.Data, want.Data)
	}
}

func TestDenseSlabGolden(t *testing.T) {
	want := NewDense(2, 2)
	copy(want.Data, []float64{1, 2, 3, 4.5})
	enc, err := want.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(enc); got != denseSlabGolden {
		t.Fatalf("slab layout drifted:\n got %s\nwant %s", got, denseSlabGolden)
	}
	raw, _ := hex.DecodeString(denseSlabGolden)
	var got Dense
	if err := got.GobDecode(raw); err != nil {
		t.Fatal(err)
	}
	if got.Rows != 2 || got.Cols != 2 || got.Stride != 2 || !sameBits(got.Data, want.Data) {
		t.Fatalf("decoded %+v", got)
	}
}

func TestBlockSlabRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBlock(3, 4, 17, 9)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	b.Data[5] = math.NaN()
	b.Data[40] = math.Inf(-1)
	enc, err := b.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got Block
	if err := got.GobDecode(enc); err != nil {
		t.Fatal(err)
	}
	if got.BR != b.BR || got.BC != b.BC || got.Rows != b.Rows || got.Cols != b.Cols {
		t.Fatalf("shape drifted: %+v", got)
	}
	if !sameBits(got.Data, b.Data) {
		t.Fatal("element bits not preserved")
	}
}

func TestPhantomBlockSlabRoundTrip(t *testing.T) {
	p := NewPhantomBlock(2, 5, 300, 400)
	enc, err := p.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got Block
	if err := got.GobDecode(enc); err != nil {
		t.Fatal(err)
	}
	if !got.Phantom() || got.Rows != 300 || got.Cols != 400 || got.BR != 2 || got.BC != 5 {
		t.Fatalf("phantom round trip: %+v", got)
	}
}

// TestDenseSlabCompactsViews checks that a strided view (stride > cols)
// encodes its logical elements only and decodes compact.
func TestDenseSlabCompactsViews(t *testing.T) {
	base := NewDense(4, 4)
	for i := range base.Data {
		base.Data[i] = float64(i)
	}
	view := &Dense{Rows: 2, Cols: 2, Stride: 4, Data: base.Data[5:]}
	enc, err := view.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got Dense
	if err := got.GobDecode(enc); err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 9, 10}
	if got.Stride != 2 || !sameBits(got.Data, want) {
		t.Fatalf("decoded view %+v, want %v compact", got, want)
	}
}

func TestSlabDecodeRejectsCorruption(t *testing.T) {
	valid, err := goldenBlock().GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      append([]byte{0xEE}, valid[1:]...),
		"bad version":    append([]byte{blockSlabMagic, 99}, valid[2:]...),
		"truncated hdr":  valid[:3],
		"short payload":  valid[:len(valid)-8],
		"trailing bytes": append(append([]byte(nil), valid...), 0),
		"dense as block": func() []byte { d, _ := NewDense(2, 2).GobEncode(); return d }(),
	}
	for name, data := range cases {
		var b Block
		if err := b.GobDecode(data); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
	// Oversize header claim must be rejected before allocating.
	huge := []byte{blockSlabMagic, slabVersion}
	huge = appendUvarint(huge, 0)
	huge = appendUvarint(huge, 0)
	huge = appendUvarint(huge, 1<<30) // rows
	huge = appendUvarint(huge, 1<<30) // cols
	huge = appendUvarint(huge, 0)
	var b Block
	if err := b.GobDecode(huge); err == nil {
		t.Error("oversize slab header accepted")
	}
	var d Dense
	if err := d.GobDecode(bytes.Clone(valid)); err == nil {
		t.Error("block slab accepted as Dense")
	}
}
