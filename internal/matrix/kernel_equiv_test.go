package matrix

import (
	"fmt"
	"math"
	"testing"
)

// Cross-variant equivalence suite: every micro-kernel this host can
// execute (the pure-Go oracle and, on capable amd64 hosts, the
// AVX2+FMA assembly variant) must agree with the naive triple loop on
// adversarial shapes — tile edges, degenerate dimensions, strided
// views, aliased operands, and non-finite values. The suite runs under
// -race in CI, so the threaded driver is exercised for data races too.

// equivKernels returns one Kernel per executable variant, each with
// small blocking so multi-panel paths engage at test sizes.
func equivKernels() map[string]Kernel {
	ks := map[string]Kernel{}
	for _, v := range kernelVariants() {
		ks[v.name] = Kernel{mc: 2 * v.mr, kc: 7, nc: 2 * v.nr, variant: v}
	}
	return ks
}

// TestVariantsMatchNaiveAdversarialShapes sweeps shapes chosen to land
// on every edge-handling path: non-multiples of both register block
// dimensions, single rows/columns, and tall/skinny panels.
func TestVariantsMatchNaiveAdversarialShapes(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{1, 1, 1},    // degenerate everything
		{1, 1, 5},    // dot product
		{1, 17, 3},   // single row, ragged n
		{17, 1, 3},   // single column
		{5, 7, 9},    // all dims off-block
		{6, 8, 4},    // exactly one avx2 tile
		{7, 9, 4},    // one tile + 1 edge row/col
		{12, 16, 13}, // full tiles, k crosses kc=7
		{13, 17, 13}, // full tiles + edges, k crosses kc
		{37, 5, 29},  // tall and skinny
		{5, 37, 29},  // short and wide
		{23, 23, 1},  // k=1: single rank-1 update
		{48, 48, 48}, // several cache blocks in every dim
	}
	for name, kern := range equivKernels() {
		for _, s := range shapes {
			t.Run(fmt.Sprintf("%s/%dx%dx%d", name, s.m, s.n, s.k), func(t *testing.T) {
				rng := NewSeeded(int64(7*s.m + 5*s.n + 3*s.k))
				a, b := NewDense(s.m, s.k), NewDense(s.k, s.n)
				a.FillRandom(rng)
				b.FillRandom(rng)
				equalOrBothNaN(t, kern.Mul(a, b), mulNaive(a, b), kernelTol(s.k))
			})
		}
	}
}

// TestVariantsAgreeExactly pins that the assembly variant and the Go
// oracle produce *bitwise identical* results, not merely close ones:
// both accumulate c[i][j] as an ordered sum over p of a[i][p]·b[p][j]
// in float64, FMA contraction aside — and FMA only tightens each step.
// Bitwise agreement is what lets the sim tables be regenerated on any
// host without a tolerance footnote.
//
// The inputs are small integers, for which FMA contraction is exact,
// so any divergence is a real layout or ordering bug.
func TestVariantsAgreeExactly(t *testing.T) {
	vs := kernelVariants()
	if len(vs) < 2 {
		t.Skip("host has only the portable variant")
	}
	for _, s := range []struct{ m, n, k int }{{6, 8, 16}, {13, 19, 31}, {40, 40, 40}} {
		a, b := NewDense(s.m, s.k), NewDense(s.k, s.n)
		for i := range a.Data {
			a.Data[i] = float64(i%5 - 2)
		}
		for i := range b.Data {
			b.Data[i] = float64(i%7 - 3)
		}
		ref := (Kernel{variant: vs[0], mc: 12, kc: 8, nc: 16}).Mul(a, b)
		for _, v := range vs[1:] {
			got := (Kernel{variant: v, mc: 12, kc: 8, nc: 16}).Mul(a, b)
			for i := range ref.Data {
				if got.Data[i] != ref.Data[i] {
					t.Fatalf("%s diverges from %s at %dx%dx%d flat index %d: %v != %v",
						v.name, vs[0].name, s.m, s.n, s.k, i, got.Data[i], ref.Data[i])
				}
			}
		}
	}
}

// TestVariantsKZero pins the k=0 contract: a multiply with an empty
// inner dimension is a no-op accumulation, so MulAdd must leave a
// pre-filled C untouched. NewDense rejects zero dims, so the views are
// built directly.
func TestVariantsKZero(t *testing.T) {
	for name, kern := range equivKernels() {
		t.Run(name, func(t *testing.T) {
			a := &Dense{Rows: 3, Cols: 0, Stride: 1, Data: nil}
			b := &Dense{Rows: 0, Cols: 4, Stride: 4, Data: nil}
			c := NewDense(3, 4)
			for i := range c.Data {
				c.Data[i] = float64(i) + 0.25
			}
			want := c.Clone()
			kern.MulAdd(c, a, b)
			for i := range c.Data {
				if c.Data[i] != want.Data[i] {
					t.Fatalf("k=0 MulAdd modified C at %d: %v != %v", i, c.Data[i], want.Data[i])
				}
			}
		})
	}
}

// TestVariantsStridedViews runs every variant over operands whose
// Stride exceeds Cols (sub-matrix views), the layout the distributed
// blocks use; the packing routines must honor lda/ldb/ldc, not assume
// compact rows.
func TestVariantsStridedViews(t *testing.T) {
	const m, n, k, pad = 11, 13, 9, 5
	rng := NewSeeded(99)
	backA := NewDense(m, k+pad)
	backB := NewDense(k, n+pad)
	backA.FillRandom(rng)
	backB.FillRandom(rng)
	a := &Dense{Rows: m, Cols: k, Stride: k + pad, Data: backA.Data}
	b := &Dense{Rows: k, Cols: n, Stride: n + pad, Data: backB.Data}
	want := mulNaive(a, b)
	for name, kern := range equivKernels() {
		t.Run(name, func(t *testing.T) {
			backC := NewDense(m, n+pad)
			c := &Dense{Rows: m, Cols: n, Stride: n + pad, Data: backC.Data}
			kern.MulAdd(c, a, b)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					if math.Abs(c.At(i, j)-want.At(i, j)) > kernelTol(k) {
						t.Fatalf("strided C (%d,%d): %v != %v", i, j, c.At(i, j), want.At(i, j))
					}
				}
				// The padding lane must stay untouched.
				for j := n; j < n+pad; j++ {
					if backC.At(i, j) != 0 {
						t.Fatalf("padding (%d,%d) written: %v", i, j, backC.At(i, j))
					}
				}
			}
		})
	}
}

// TestVariantsAliasedSquare pins Mul(a, a): the packing step snapshots
// both operands before any C write, so squaring in place of distinct
// operands must match the naive result.
func TestVariantsAliasedSquare(t *testing.T) {
	for name, kern := range equivKernels() {
		t.Run(name, func(t *testing.T) {
			a := NewDense(19, 19)
			a.FillRandom(NewSeeded(5))
			equalOrBothNaN(t, kern.Mul(a, a), mulNaive(a, a), kernelTol(19))
		})
	}
}

// TestVariantsNaNInf pins IEEE semantics through every variant: NaN
// and ±Inf in either operand must propagate exactly as the naive
// triple loop propagates them (the padded tile edges must not bleed
// zeros into the contamination pattern).
func TestVariantsNaNInf(t *testing.T) {
	const m, n, k = 9, 11, 7
	rng := NewSeeded(31)
	a, b := NewDense(m, k), NewDense(k, n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	a.Set(2, 3, math.NaN())
	a.Set(8, 0, math.Inf(1))
	b.Set(4, 10, math.Inf(-1))
	want := mulNaive(a, b)
	for name, kern := range equivKernels() {
		t.Run(name, func(t *testing.T) {
			got := kern.Mul(a, b)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					g, w := got.At(i, j), want.At(i, j)
					if math.IsNaN(w) != math.IsNaN(g) {
						t.Fatalf("(%d,%d): NaN mismatch got %v want %v", i, j, g, w)
					}
					if !math.IsNaN(w) && g != w && math.Abs(g-w) > kernelTol(k)*math.Max(1, math.Abs(w)) {
						t.Fatalf("(%d,%d): got %v want %v", i, j, g, w)
					}
				}
			}
		})
	}
}

// TestVariantsThreadedEquivalence runs the column-panel parallel driver
// for every variant and thread count against the serial result. The
// partition is by disjoint jc panels with identical packing, so the
// results must be bitwise equal, and under -race this doubles as the
// driver's data-race test.
func TestVariantsThreadedEquivalence(t *testing.T) {
	const n = 70 // several panels wide at nc=2·nr
	a, b := RandomPair(NewSeeded(11), n)
	for name, kern := range equivKernels() {
		serial := kern.Mul(a, b)
		for _, threads := range []int{2, 3, 5, 16} {
			kt := kern
			kt.Threads = threads
			t.Run(fmt.Sprintf("%s/t=%d", name, threads), func(t *testing.T) {
				got := kt.Mul(a, b)
				for i := range serial.Data {
					if got.Data[i] != serial.Data[i] {
						t.Fatalf("threaded result diverges from serial at flat index %d: %v != %v",
							i, got.Data[i], serial.Data[i])
					}
				}
			})
		}
	}
}
