//go:build amd64

package matrix

import "strings"

// CPU-feature detection for the micro-kernel dispatcher, implemented
// directly over CPUID/XGETBV (cpu_amd64.s) so the repository keeps its
// no-dependency rule. The raw instruction wrappers cpuidex and xgetbv0
// are assembly-backed and, per the asmsafe rule, referenced only from
// this file; everything else consumes the cached cpuInfo.

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

type cpuInfo struct {
	model    string
	features []string
	avx2fma  bool
}

// detectCPU interrogates CPUID once at package init. Feature names
// follow /proc/cpuinfo spelling so BENCH_kernels.json headers read
// naturally next to kernel logs.
func detectCPU() cpuInfo {
	var info cpuInfo
	maxLeaf, _, _, _ := cpuidex(0, 0)
	_, _, ecx1, edx1 := cpuidex(1, 0)
	const (
		bitSSE2    = 1 << 26 // leaf 1 EDX
		bitFMA     = 1 << 12 // leaf 1 ECX
		bitOSXSAVE = 1 << 27 // leaf 1 ECX
		bitAVX     = 1 << 28 // leaf 1 ECX
		bitAVX2    = 1 << 5  // leaf 7 EBX
	)
	have := func(name string, ok bool) bool {
		if ok {
			info.features = append(info.features, name)
		}
		return ok
	}
	have("sse2", edx1&bitSSE2 != 0)
	fma := have("fma", ecx1&bitFMA != 0)
	avx := have("avx", ecx1&bitAVX != 0)
	avx2 := false
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuidex(7, 0)
		avx2 = have("avx2", ebx7&bitAVX2 != 0)
	}
	// The OS must have enabled XMM+YMM state saving (XCR0 bits 1 and 2)
	// for AVX register state to survive context switches.
	ymmOS := false
	if ecx1&bitOSXSAVE != 0 {
		xa, _ := xgetbv0()
		ymmOS = xa&0x6 == 0x6
		have("osxsave", true)
	}
	info.avx2fma = avx && avx2 && fma && ymmOS
	info.model = cpuBrand()
	return info
}

// cpuBrand returns the processor brand string (CPUID leaves
// 0x80000002..4), or the vendor id when the extended leaves are
// unsupported.
func cpuBrand() string {
	maxExt, _, _, _ := cpuidex(0x80000000, 0)
	if maxExt < 0x80000004 {
		var v [12]byte
		_, b, c, d := cpuidex(0, 0)
		putU32LE(v[0:], b)
		putU32LE(v[4:], d)
		putU32LE(v[8:], c)
		return strings.TrimRight(string(v[:]), "\x00")
	}
	var brand [48]byte
	for i := uint32(0); i < 3; i++ {
		a, b, c, d := cpuidex(0x80000002+i, 0)
		putU32LE(brand[i*16:], a)
		putU32LE(brand[i*16+4:], b)
		putU32LE(brand[i*16+8:], c)
		putU32LE(brand[i*16+12:], d)
	}
	return strings.TrimSpace(strings.TrimRight(string(brand[:]), "\x00"))
}

func putU32LE(dst []byte, v uint32) {
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
}

var hostCPU = detectCPU()

// CPUModel reports the host processor's brand string, recorded in the
// BENCH_kernels.json header so trajectories across hosts are
// interpretable.
func CPUModel() string { return hostCPU.model }

// CPUFeatures reports the detected ISA features relevant to the kernel
// dispatcher, in /proc/cpuinfo spelling.
func CPUFeatures() []string { return append([]string(nil), hostCPU.features...) }

// cpuHasAVX2FMA reports whether the AVX2+FMA assembly micro-kernel can
// run on this host (ISA present and YMM state OS-enabled).
func cpuHasAVX2FMA() bool { return hostCPU.avx2fma }
