//go:build amd64

package matrix

import (
	"os"
	"sync"
)

// This file is the micro-kernel dispatch layer for amd64: the assembly
// entry point declaration, its bounds-checked wrapper, and the runtime
// feature-detect selection between the AVX2+FMA variant and the
// portable Go fallback. Per the asmsafe rule (DESIGN.md §15), the
// assembly-backed symbol kernavx2 is referenced only from this file —
// every consumer goes through the selected microKernel value, so the
// pure-Go fallback stays selectable on every path.

// kernavx2 is implemented in kernel_amd64.s.
//
//go:noescape
func kernavx2(kc int64, ap, bp, c *float64, ldc int64)

// avx2Kernel is the 6×8 AVX2+FMA register-block variant. Its packed-A
// micro-panels are 6 tall and packed-B micro-panels 8 wide — the n
// dimension rides the YMM vectors because C is row-major, so tile rows
// load and store as two contiguous 32-byte vectors.
var avx2Kernel = &microKernel{name: "avx2-6x8", mr: 6, nr: 8, kern: kernAVX2}

// kernAVX2 adapts the assembly ABI to the microKernel contract. The
// driver guarantees a full 6×8 tile: ap holds kcc groups of 6, bp kcc
// groups of 8, and c at least (5·ldc + 8) elements.
func kernAVX2(kcc int, ap, bp, c []float64, ldc int) {
	if kcc == 0 {
		return
	}
	// Explicit bounds assertions: the assembly reads/writes exactly
	// these extents, so a driver bug faults here, not in the kernel.
	_ = ap[6*kcc-1]
	_ = bp[8*kcc-1]
	_ = c[5*ldc+7]
	kernavx2(int64(kcc), &ap[0], &bp[0], &c[0], int64(ldc))
}

var (
	dispatchOnce sync.Once
	dispatched   *microKernel
)

// activeVariant returns the micro-kernel the host runs with: the AVX2
// variant when the CPU and OS support it and NAVP_NOSIMD is unset, the
// portable Go variant otherwise. Decided once per process.
func activeVariant() *microKernel {
	dispatchOnce.Do(func() {
		dispatched = goKernel
		if os.Getenv("NAVP_NOSIMD") == "" && cpuHasAVX2FMA() {
			dispatched = avx2Kernel
		}
	})
	return dispatched
}

// kernelVariants lists every micro-kernel this host can execute, the
// portable oracle first. Used by the equivalence tests and the
// autotuner; NAVP_NOSIMD restricts dispatch, not testability.
func kernelVariants() []*microKernel {
	vs := []*microKernel{goKernel}
	if cpuHasAVX2FMA() {
		vs = append(vs, avx2Kernel)
	}
	return vs
}
