package matrix

import "fmt"

// This file implements the initial-staggering schedules discussed in §5(3)
// of the paper. Both Gentleman's/Cannon's Algorithm ("forward staggering")
// and the NavP programs ("reverse staggering") begin by permuting the
// columns of each A row (and the rows of each B column) across the PE
// grid. The paper observes that reverse staggering never needs more than
// two communication phases while forward staggering often needs three.
//
// The phase model is the half-duplex exchange model of the paper's
// Ethernet testbed: in one phase a PE participates in at most one
// transfer, as either sender or receiver. Under this model the transfers
// of a permutation decompose into cycles, the edges of an even cycle can
// be 2-colored into two phases, and an odd cycle (length ≥ 3) needs a
// third phase. Forward staggering shifts row i by i — a cyclic shift whose
// cycles have length N/gcd(N, i), frequently odd. Reverse staggering maps
// k to (c − k) mod N — an involution, whose cycles all have length ≤ 2.

// ForwardStagger returns, for shift s over n positions, the permutation
// sending position k to (k − s) mod n. This is the column movement of row
// s of A (and, transposed, the row movement of column s of B) in
// Gentleman's and Cannon's algorithms.
func ForwardStagger(n, s int) []int {
	p := make([]int, n)
	for k := 0; k < n; k++ {
		p[k] = ((k-s)%n + n) % n
	}
	return p
}

// ReverseStagger returns, for offset c over n positions, the permutation
// sending position k to (c − k) mod n. This is the column movement
// performed by the first hop of the NavP carriers: ACarrier(i, k) starting
// in column k of row i moves to column (N−1−i−k) mod N, i.e. c = N−1−i.
func ReverseStagger(n, c int) []int {
	p := make([]int, n)
	for k := 0; k < n; k++ {
		p[k] = ((c-k)%n + n) % n
	}
	return p
}

// IsPermutation reports whether p is a permutation of 0..len(p)-1.
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// CommPhases returns the number of half-duplex communication phases
// required to realize permutation p: 0 if p is the identity, 2 if every
// non-trivial cycle has even length, and 3 if any cycle of odd length ≥ 3
// exists.
func CommPhases(p []int) int {
	if !IsPermutation(p) {
		panic(fmt.Sprintf("matrix: CommPhases of non-permutation %v", p))
	}
	phases := 0
	seen := make([]bool, len(p))
	for start := range p {
		if seen[start] || p[start] == start {
			seen[start] = true
			continue
		}
		length := 0
		for k := start; !seen[k]; k = p[k] {
			seen[k] = true
			length++
		}
		need := 2
		if length%2 == 1 {
			need = 3
		}
		if need > phases {
			phases = need
		}
	}
	return phases
}

// Transfer is one point-to-point block movement.
type Transfer struct{ From, To int }

// SchedulePhases packs the transfers of permutation p into half-duplex
// phases by cycle decomposition and edge coloring, returning one slice of
// transfers per phase. It realizes exactly CommPhases(p) phases and is
// used both by the staggering benchmark and as an executable cross-check
// of the analytic count.
func SchedulePhases(p []int) [][]Transfer {
	if !IsPermutation(p) {
		panic(fmt.Sprintf("matrix: SchedulePhases of non-permutation %v", p))
	}
	phases := make([][]Transfer, CommPhases(p))
	seen := make([]bool, len(p))
	for start := range p {
		if seen[start] || p[start] == start {
			seen[start] = true
			continue
		}
		// Walk the cycle collecting its edges in order.
		var cycle []Transfer
		for k := start; !seen[k]; k = p[k] {
			seen[k] = true
			cycle = append(cycle, Transfer{From: k, To: p[k]})
		}
		// Alternate edges between phases 0 and 1; an odd cycle's last edge
		// would conflict with both neighbours and goes to phase 2.
		for i, tr := range cycle {
			ph := i % 2
			if len(cycle)%2 == 1 && i == len(cycle)-1 {
				ph = 2
			}
			phases[ph] = append(phases[ph], tr)
		}
	}
	return phases
}

// ValidPhase reports whether the transfers can execute simultaneously
// under the half-duplex model: no PE appears more than once, counting
// both endpoints.
func ValidPhase(trs []Transfer) bool {
	busy := map[int]bool{}
	for _, tr := range trs {
		if busy[tr.From] || busy[tr.To] || tr.From == tr.To {
			return false
		}
		busy[tr.From] = true
		busy[tr.To] = true
	}
	return true
}

// ApplyColumnPerm permutes the blocks of row br of bm so the block in
// column k moves to column p[k]. It is used to realize staggering
// layouts.
func (bm *Blocked) ApplyColumnPerm(br int, p []int) {
	if len(p) != bm.NB {
		panic(fmt.Sprintf("matrix: permutation length %d != block order %d", len(p), bm.NB))
	}
	old := make([]*Block, bm.NB)
	for bc := 0; bc < bm.NB; bc++ {
		old[bc] = bm.Block(br, bc)
	}
	for bc := 0; bc < bm.NB; bc++ {
		bm.blocks[br*bm.NB+p[bc]] = old[bc]
	}
}

// ApplyRowPerm permutes the blocks of column bc of bm so the block in row
// k moves to row p[k].
func (bm *Blocked) ApplyRowPerm(bc int, p []int) {
	if len(p) != bm.NB {
		panic(fmt.Sprintf("matrix: permutation length %d != block order %d", len(p), bm.NB))
	}
	old := make([]*Block, bm.NB)
	for br := 0; br < bm.NB; br++ {
		old[br] = bm.Block(br, bc)
	}
	for br := 0; br < bm.NB; br++ {
		bm.blocks[p[br]*bm.NB+bc] = old[br]
	}
}
