package matrix

import (
	"math/rand"
	"runtime"
	"testing"
)

func benchBlocks(bs int) (c, a, b *Block) {
	rng := rand.New(rand.NewSource(1))
	a = NewBlock(0, 0, bs, bs)
	b = NewBlock(0, 0, bs, bs)
	c = NewBlock(0, 0, bs, bs)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
		b.Data[i] = rng.Float64()
	}
	return c, a, b
}

// BenchmarkMulAdd measures the block kernel at the paper's block sizes.
func BenchmarkMulAdd(b *testing.B) {
	for _, bs := range []int{32, 64, 128, 256} {
		bs := bs
		b.Run(itoa(bs), func(b *testing.B) {
			cb, ab, bb := benchBlocks(bs)
			b.SetBytes(int64(3 * bs * bs * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulAdd(cb, ab, bb)
			}
			flops := 2 * float64(bs) * float64(bs) * float64(bs)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
		})
	}
}

// benchPair returns a seeded random n×n multiplicand pair.
func benchPair(n int) (x, y *Dense) {
	rng := rand.New(rand.NewSource(2))
	x, y = NewDense(n, n), NewDense(n, n)
	x.FillRandom(rng)
	y.FillRandom(rng)
	return x, y
}

func reportGflops(b *testing.B, n int) {
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkNaiveMul is the recorded baseline: the paper's Figure 2
// i-j-k triple loop.
func BenchmarkNaiveMul(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		n := n
		b.Run("n="+itoa(n), func(b *testing.B) {
			x, y := benchPair(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mulNaive(x, y)
			}
			reportGflops(b, n)
		})
	}
}

// BenchmarkSaxpyMul is the intermediate i-k-j loop order (what loop
// order alone buys over the naive baseline).
func BenchmarkSaxpyMul(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		n := n
		b.Run("n="+itoa(n), func(b *testing.B) {
			x, y := benchPair(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulSaxpy(x, y)
			}
			reportGflops(b, n)
		})
	}
}

// BenchmarkKernelMul is the packed serial kernel — the fast path behind
// matrix.Mul and Block MulAdd, and the number the BENCH_kernels.json
// regression gate watches.
func BenchmarkKernelMul(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		n := n
		b.Run("n="+itoa(n), func(b *testing.B) {
			x, y := benchPair(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Kernel{}.Mul(x, y)
			}
			reportGflops(b, n)
		})
	}
}

// BenchmarkKernelMulThreads scales the column-panel worker pool at
// n=1024 across t=1,2,4 and up through NumCPU. On a host with fewer
// CPUs than t, a row measures pool overhead, not speedup — the JSON
// regression file records NumCPU alongside and gates those rows on
// bounded overhead instead of scaling.
func BenchmarkKernelMulThreads(b *testing.B) {
	const n = 1024
	threadCounts := []int{1, 2, 4}
	for p := 8; p <= runtime.NumCPU(); p *= 2 {
		threadCounts = append(threadCounts, p)
	}
	if c := runtime.NumCPU(); c > 4 && threadCounts[len(threadCounts)-1] != c {
		threadCounts = append(threadCounts, c)
	}
	for _, threads := range threadCounts {
		threads := threads
		b.Run("t="+itoa(threads), func(b *testing.B) {
			x, y := benchPair(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Kernel{Threads: threads}.Mul(x, y)
			}
			reportGflops(b, n)
		})
	}
}

// BenchmarkPartitionAssemble measures the blocked-view conversion.
func BenchmarkPartitionAssemble(b *testing.B) {
	const n = 512
	rng := rand.New(rand.NewSource(3))
	d := NewDense(n, n)
	d.FillRandom(rng)
	b.SetBytes(int64(n * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(d, 128).Assemble()
	}
}

// BenchmarkSchedulePhases measures the staggering scheduler.
func BenchmarkSchedulePhases(b *testing.B) {
	p := ForwardStagger(255, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SchedulePhases(p)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
