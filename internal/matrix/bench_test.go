package matrix

import (
	"math/rand"
	"testing"
)

func benchBlocks(bs int) (c, a, b *Block) {
	rng := rand.New(rand.NewSource(1))
	a = NewBlock(0, 0, bs, bs)
	b = NewBlock(0, 0, bs, bs)
	c = NewBlock(0, 0, bs, bs)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
		b.Data[i] = rng.Float64()
	}
	return c, a, b
}

// BenchmarkMulAdd measures the block kernel at the paper's block sizes.
func BenchmarkMulAdd(b *testing.B) {
	for _, bs := range []int{32, 64, 128, 256} {
		bs := bs
		b.Run(itoa(bs), func(b *testing.B) {
			cb, ab, bb := benchBlocks(bs)
			b.SetBytes(int64(3 * bs * bs * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulAdd(cb, ab, bb)
			}
			flops := 2 * float64(bs) * float64(bs) * float64(bs)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
		})
	}
}

// BenchmarkMulBlockedVsNaive compares the cache-blocked full multiply
// against the straight triple loop.
func BenchmarkMulBlockedVsNaive(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(2))
	x := NewDense(n, n)
	y := NewDense(n, n)
	x.FillRandom(rng)
	y.FillRandom(rng)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Mul(x, y)
		}
	})
	b.Run("blocked64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MulBlocked(x, y, 64)
		}
	})
}

// BenchmarkPartitionAssemble measures the blocked-view conversion.
func BenchmarkPartitionAssemble(b *testing.B) {
	const n = 512
	rng := rand.New(rand.NewSource(3))
	d := NewDense(n, n)
	d.FillRandom(rng)
	b.SetBytes(int64(n * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(d, 128).Assemble()
	}
}

// BenchmarkSchedulePhases measures the staggering scheduler.
func BenchmarkSchedulePhases(b *testing.B) {
	p := ForwardStagger(255, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SchedulePhases(p)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
