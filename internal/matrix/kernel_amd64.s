//go:build amd64

#include "textflag.h"

// kernavx2 is the AVX2+FMA micro-kernel: a 6×8 tile of C accumulated
// over kc steps of the packed panels (DESIGN.md §15 documents the ABI).
//
//	C[i][j] += Σ_p ap[p*6+i] · bp[p*8+j]   for i in 0..5, j in 0..7
//
// Register plan (16 YMM registers, all live):
//
//	Y0..Y11  twelve accumulators — row i of the tile is Y(2i) (columns
//	         0..3) and Y(2i+1) (columns 4..7)
//	Y12,Y13  the current 8-wide B row, loaded once per k step
//	Y14,Y15  broadcast A values, double-buffered so the next broadcast
//	         issues while two FMAs still read the previous one
//
// Per k step: 2 vector loads + 6 broadcasts + 12 FMAs. The 12
// independent accumulators cover the FMA latency×throughput product
// (4-5 cycles × 2/cycle) so the loop sustains ~2 FMAs/cycle; the k loop
// is unrolled ×2 to halve loop overhead. Panels are read sequentially
// (A at 48 B/step, B at 64 B/step), so the hardware prefetchers track
// them without explicit PREFETCH hints.
//
// func kernavx2(kc int64, ap, bp, c *float64, ldc int64)
TEXT ·kernavx2(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), DX
	SHLQ $3, DX            // ldc in bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

	MOVQ CX, AX
	SHRQ $1, AX
	JZ   tail

loop2:
	// k step 0
	VMOVUPD      (BX), Y12
	VMOVUPD      32(BX), Y13
	VBROADCASTSD (SI), Y14
	VBROADCASTSD 8(SI), Y15
	VFMADD231PD  Y12, Y14, Y0
	VFMADD231PD  Y13, Y14, Y1
	VFMADD231PD  Y12, Y15, Y2
	VFMADD231PD  Y13, Y15, Y3
	VBROADCASTSD 16(SI), Y14
	VBROADCASTSD 24(SI), Y15
	VFMADD231PD  Y12, Y14, Y4
	VFMADD231PD  Y13, Y14, Y5
	VFMADD231PD  Y12, Y15, Y6
	VFMADD231PD  Y13, Y15, Y7
	VBROADCASTSD 32(SI), Y14
	VBROADCASTSD 40(SI), Y15
	VFMADD231PD  Y12, Y14, Y8
	VFMADD231PD  Y13, Y14, Y9
	VFMADD231PD  Y12, Y15, Y10
	VFMADD231PD  Y13, Y15, Y11

	// k step 1
	VMOVUPD      64(BX), Y12
	VMOVUPD      96(BX), Y13
	VBROADCASTSD 48(SI), Y14
	VBROADCASTSD 56(SI), Y15
	VFMADD231PD  Y12, Y14, Y0
	VFMADD231PD  Y13, Y14, Y1
	VFMADD231PD  Y12, Y15, Y2
	VFMADD231PD  Y13, Y15, Y3
	VBROADCASTSD 64(SI), Y14
	VBROADCASTSD 72(SI), Y15
	VFMADD231PD  Y12, Y14, Y4
	VFMADD231PD  Y13, Y14, Y5
	VFMADD231PD  Y12, Y15, Y6
	VFMADD231PD  Y13, Y15, Y7
	VBROADCASTSD 80(SI), Y14
	VBROADCASTSD 88(SI), Y15
	VFMADD231PD  Y12, Y14, Y8
	VFMADD231PD  Y13, Y14, Y9
	VFMADD231PD  Y12, Y15, Y10
	VFMADD231PD  Y13, Y15, Y11

	ADDQ $96, SI
	ADDQ $128, BX
	DECQ AX
	JNE  loop2

tail:
	TESTQ $1, CX
	JZ    store

	VMOVUPD      (BX), Y12
	VMOVUPD      32(BX), Y13
	VBROADCASTSD (SI), Y14
	VBROADCASTSD 8(SI), Y15
	VFMADD231PD  Y12, Y14, Y0
	VFMADD231PD  Y13, Y14, Y1
	VFMADD231PD  Y12, Y15, Y2
	VFMADD231PD  Y13, Y15, Y3
	VBROADCASTSD 16(SI), Y14
	VBROADCASTSD 24(SI), Y15
	VFMADD231PD  Y12, Y14, Y4
	VFMADD231PD  Y13, Y14, Y5
	VFMADD231PD  Y12, Y15, Y6
	VFMADD231PD  Y13, Y15, Y7
	VBROADCASTSD 32(SI), Y14
	VBROADCASTSD 40(SI), Y15
	VFMADD231PD  Y12, Y14, Y8
	VFMADD231PD  Y13, Y14, Y9
	VFMADD231PD  Y12, Y15, Y10
	VFMADD231PD  Y13, Y15, Y11

store:
	// C += accumulators, row by row (rows are ldc bytes apart).
	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	VADDPD  32(DI), Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y2, Y2
	VMOVUPD Y2, (DI)
	VADDPD  32(DI), Y3, Y3
	VMOVUPD Y3, 32(DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y4, Y4
	VMOVUPD Y4, (DI)
	VADDPD  32(DI), Y5, Y5
	VMOVUPD Y5, 32(DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y6, Y6
	VMOVUPD Y6, (DI)
	VADDPD  32(DI), Y7, Y7
	VMOVUPD Y7, 32(DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y8, Y8
	VMOVUPD Y8, (DI)
	VADDPD  32(DI), Y9, Y9
	VMOVUPD Y9, 32(DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y10, Y10
	VMOVUPD Y10, (DI)
	VADDPD  32(DI), Y11, Y11
	VMOVUPD Y11, 32(DI)

	VZEROUPPER
	RET
