package matrix

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// useTempTuneCache points os.UserCacheDir at a per-test directory and
// resets the in-process tuned view, so tests neither read nor pollute
// the real per-host cache.
func useTempTuneCache(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	t.Setenv("XDG_CACHE_HOME", dir)
	resetTunedCache()
	t.Cleanup(resetTunedCache)
	return dir
}

// TestTuneCacheRoundTrip pins the autotune cache contract end to end:
// an untuned host resolves defaults, SaveTune makes the tuned
// parameters take effect (a cache hit through Kernel.config), and a
// cache written by a different schema or host is rejected rather than
// half-applied.
func TestTuneCacheRoundTrip(t *testing.T) {
	useTempTuneCache(t)

	v := activeVariant()
	dmc, dkc, dnc := v.defaults()
	if mc, kc, nc := tunedFor(v); mc != dmc || kc != dkc || nc != dnc {
		t.Fatalf("untuned host: got %d/%d/%d want defaults %d/%d/%d", mc, kc, nc, dmc, dkc, dnc)
	}
	if src := tunedSource(v); src != "default" {
		t.Fatalf("untuned source = %q, want default", src)
	}

	want := [3]int{roundUp(120, v.mr), 192, roundUp(1536, v.nr)}
	f := &TuneFile{
		Schema: tuneSchema, CPU: CPUModel(), GOARCH: runtime.GOARCH, N: 64,
		Best: []TuneTrial{{Variant: v.name, MC: want[0], KC: want[1], NC: want[2], GFlops: 1}},
	}
	path, err := SaveTune(f)
	if err != nil {
		t.Fatalf("SaveTune: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache file missing: %v", err)
	}
	if filepath.Ext(path) != ".json" {
		t.Fatalf("cache path %q not a .json file", path)
	}

	// The hit must flow through the real resolution path Kernel.config
	// uses, not just the loader.
	got, src := func() ([3]int, string) {
		_, mc, kc, nc := Kernel{}.config()
		return [3]int{mc, kc, nc}, tunedSource(v)
	}()
	if got != want {
		t.Fatalf("tuned host: got %v want %v", got, want)
	}
	if src != "tuned" {
		t.Fatalf("tuned source = %q, want tuned", src)
	}

	// A correct multiply under the tuned blocking (odd panel sizes vs n).
	a, b := RandomPair(NewSeeded(3), 70)
	equalOrBothNaN(t, (Kernel{}).Mul(a, b), mulNaive(a, b), kernelTol(70))

	// Stale schema must be ignored, falling back to defaults.
	f.Schema = tuneSchema - 1
	if _, err := SaveTune(f); err != nil {
		t.Fatalf("SaveTune stale: %v", err)
	}
	if mc, kc, nc := tunedFor(v); mc != dmc || kc != dkc || nc != dnc {
		t.Fatalf("stale schema honored: got %d/%d/%d want defaults", mc, kc, nc)
	}

	// A cache from a different CPU must likewise be rejected.
	f.Schema, f.CPU = tuneSchema, "some-other-cpu"
	if _, err := SaveTune(f); err != nil {
		t.Fatalf("SaveTune other-cpu: %v", err)
	}
	if _, _, ok := LoadTune(); ok {
		t.Fatal("cache from a different CPU model was accepted")
	}
}

// TestTuneCacheCorruptionRecovers pins the durability contract SaveTune
// gained with the tmp+rename write: a corrupt (torn, truncated, or
// garbage) cache at the final path is rejected cleanly by every reader,
// and the next SaveTune replaces it atomically — no reader ever sees
// the half-state, and no stale .tmp file lingers.
func TestTuneCacheCorruptionRecovers(t *testing.T) {
	useTempTuneCache(t)
	v := activeVariant()
	dmc, dkc, dnc := v.defaults()

	path, err := TuneCachePath()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	// A truncated JSON prefix — what a bare WriteFile interrupted by a
	// crash used to leave behind.
	if err := os.WriteFile(path, []byte(`{"schema":2,"cpu":"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := LoadTune(); ok {
		t.Fatal("LoadTune accepted a truncated cache")
	}
	resetTunedCache()
	if mc, kc, nc := tunedFor(v); mc != dmc || kc != dkc || nc != dnc {
		t.Fatalf("corrupt cache leaked into blocking: got %d/%d/%d want defaults %d/%d/%d",
			mc, kc, nc, dmc, dkc, dnc)
	}

	// SaveTune over the corrupt file must fully replace it.
	want := [3]int{roundUp(120, v.mr), 192, roundUp(1536, v.nr)}
	f := &TuneFile{
		Schema: tuneSchema, CPU: CPUModel(), GOARCH: runtime.GOARCH, N: 64,
		Best: []TuneTrial{{Variant: v.name, MC: want[0], KC: want[1], NC: want[2], GFlops: 1}},
	}
	if _, err := SaveTune(f); err != nil {
		t.Fatalf("SaveTune over corrupt cache: %v", err)
	}
	if got, _, ok := LoadTune(); !ok || len(got.Best) != 1 || got.Best[0].MC != want[0] {
		t.Fatalf("recovered cache wrong: %+v ok=%v", got, ok)
	}
	if mc, kc, nc := tunedFor(v); [3]int{mc, kc, nc} != want {
		t.Fatalf("recovered blocking %d/%d/%d, want %v", mc, kc, nc, want)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after SaveTune: %v", err)
	}
}

// TestTuneSearchQuick runs the real (shrunk) search and checks the
// result is well-formed: every executable variant gets a winner with
// legal blocking, and persisting it round-trips through LoadTune.
func TestTuneSearchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("autotune search measures wall time")
	}
	useTempTuneCache(t)

	f := TuneSearch(TuneOptions{Quick: true, N: 96, Reps: 1})
	if len(f.Best) != len(kernelVariants()) {
		t.Fatalf("got %d winners, want one per variant (%d)", len(f.Best), len(kernelVariants()))
	}
	for _, b := range f.Best {
		v := variantByName(t, b.Variant)
		if b.MC <= 0 || b.KC <= 0 || b.NC <= 0 || b.MC%v.mr != 0 || b.NC%v.nr != 0 {
			t.Fatalf("winner %+v has illegal blocking for mr=%d nr=%d", b, v.mr, v.nr)
		}
		if b.GFlops <= 0 {
			t.Fatalf("winner %+v measured no throughput", b)
		}
	}
	if _, err := SaveTune(f); err != nil {
		t.Fatalf("SaveTune: %v", err)
	}
	got, _, ok := LoadTune()
	if !ok {
		t.Fatal("LoadTune missed a cache SaveTune just wrote")
	}
	if len(got.Trials) != len(f.Trials) {
		t.Fatalf("round-trip lost trials: %d != %d", len(got.Trials), len(f.Trials))
	}
}

func variantByName(t *testing.T, name string) *microKernel {
	t.Helper()
	for _, v := range kernelVariants() {
		if v.name == name {
			return v
		}
	}
	t.Fatalf("unknown variant %q", name)
	return nil
}
