package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	d := NewDense(r, c)
	d.FillRandom(rng)
	return d
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 7, 7)
	id := NewDense(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	if !Mul(a, id).EqualApprox(a, 1e-12) || !Mul(id, a).EqualApprox(a, 1e-12) {
		t.Fatal("identity multiplication failed")
	}
}

func TestMulKnownValues(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c = %v, want %v", c.Data, want)
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulBlockedMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 5, 8, 16, 17, 33} {
		for _, bs := range []int{1, 3, 4, 8, 100} {
			a := randDense(rng, n, n)
			b := randDense(rng, n, n)
			if !MulBlocked(a, b, bs).EqualApprox(Mul(a, b), 1e-9) {
				t.Fatalf("n=%d bs=%d: blocked result differs", n, bs)
			}
		}
	}
}

func TestMulLinearityProperty(t *testing.T) {
	// Property: A(B + C) == AB + AC within floating tolerance.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(8))
		a, b, c := randDense(r, n, n), randDense(r, n, n), randDense(r, n, n)
		bc := NewDense(n, n)
		for i := range bc.Data {
			bc.Data[i] = b.Data[i] + c.Data[i]
		}
		left := Mul(a, bc)
		ab, ac := Mul(a, b), Mul(a, c)
		for i := range ab.Data {
			ab.Data[i] += ac.Data[i]
		}
		return left.EqualApprox(ab, 1e-9)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(r.Int31n(20))
		bs := 1 + int(r.Int31n(7))
		d := randDense(r, n, n)
		return Partition(d, bs).Assemble().EqualApprox(d, 0)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionEdgeBlocks(t *testing.T) {
	d := NewDense(10, 10)
	d.FillSequential()
	bm := Partition(d, 4) // 4,4,2 split
	if bm.NB != 3 {
		t.Fatalf("NB = %d, want 3", bm.NB)
	}
	if b := bm.Block(2, 2); b.Rows != 2 || b.Cols != 2 {
		t.Fatalf("edge block %d×%d, want 2×2", b.Rows, b.Cols)
	}
	if b := bm.Block(0, 2); b.Rows != 4 || b.Cols != 2 {
		t.Fatalf("edge block %d×%d, want 4×2", b.Rows, b.Cols)
	}
	if got := bm.Block(1, 1).At(0, 0); got != d.At(4, 4) {
		t.Fatalf("block content wrong: %v vs %v", got, d.At(4, 4))
	}
}

func TestBlockMulAddMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, bs := 12, 4
	a, b := randDense(rng, n, n), randDense(rng, n, n)
	ba, bb := Partition(a, bs), Partition(b, bs)
	bc := NewBlocked(n, bs, false)
	for i := 0; i < ba.NB; i++ {
		for j := 0; j < ba.NB; j++ {
			for k := 0; k < ba.NB; k++ {
				MulAdd(bc.Block(i, j), ba.Block(i, k), bb.Block(k, j))
			}
		}
	}
	if !bc.Assemble().EqualApprox(Mul(a, b), 1e-9) {
		t.Fatal("block multiply differs from dense multiply")
	}
}

func TestPhantomBlocksSkipArithmetic(t *testing.T) {
	a := NewPhantomBlock(0, 0, 4, 4)
	b := NewPhantomBlock(0, 0, 4, 4)
	c := NewPhantomBlock(0, 0, 4, 4)
	MulAdd(c, a, b) // must not panic or allocate data
	if !c.Phantom() {
		t.Fatal("phantom result materialized")
	}
	if c.Bytes(4) != 64 {
		t.Fatalf("phantom Bytes = %d, want 64", c.Bytes(4))
	}
}

func TestMixedPhantomRealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mixed phantom/real MulAdd")
		}
	}()
	MulAdd(NewBlock(0, 0, 2, 2), NewPhantomBlock(0, 0, 2, 2), NewBlock(0, 0, 2, 2))
}

func TestBlockCloneIndependence(t *testing.T) {
	b := NewBlock(1, 2, 2, 2)
	b.Set(0, 0, 5)
	c := b.Clone()
	c.Set(0, 0, 9)
	if b.At(0, 0) != 5 {
		t.Fatal("clone shares storage")
	}
	if p := NewPhantomBlock(0, 0, 2, 2).Clone(); !p.Phantom() {
		t.Fatal("phantom clone materialized")
	}
}

func TestBlockFlopsAndBytes(t *testing.T) {
	b := NewBlock(0, 0, 3, 4)
	if b.Flops(5) != 2*3*4*5 {
		t.Fatalf("Flops = %v", b.Flops(5))
	}
	if b.Bytes(8) != 3*4*8 {
		t.Fatalf("Bytes = %v", b.Bytes(8))
	}
}

func TestForwardStaggerShape(t *testing.T) {
	p := ForwardStagger(5, 2) // k -> k-2 mod 5
	want := []int{3, 4, 0, 1, 2}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("p = %v, want %v", p, want)
		}
	}
}

func TestReverseStaggerIsInvolution(t *testing.T) {
	f := func(n8, c8 uint8) bool {
		n := 1 + int(n8%32)
		c := int(c8) % n
		p := ReverseStagger(n, c)
		if !IsPermutation(p) {
			return false
		}
		for k := 0; k < n; k++ {
			if p[p[k]] != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCommPhasesReverseAtMostTwo(t *testing.T) {
	for n := 1; n <= 24; n++ {
		for c := 0; c < n; c++ {
			if ph := CommPhases(ReverseStagger(n, c)); ph > 2 {
				t.Fatalf("reverse stagger n=%d c=%d needs %d phases", n, c, ph)
			}
		}
	}
}

func TestCommPhasesForwardOftenThree(t *testing.T) {
	// Any cyclic shift with an odd cycle length needs 3 phases; e.g. a
	// shift by 1 over odd n is a single odd cycle.
	if ph := CommPhases(ForwardStagger(5, 1)); ph != 3 {
		t.Fatalf("forward n=5 s=1: %d phases, want 3", ph)
	}
	if ph := CommPhases(ForwardStagger(6, 1)); ph != 2 {
		t.Fatalf("forward n=6 s=1: %d phases, want 2 (even cycle)", ph)
	}
	if ph := CommPhases(ForwardStagger(6, 0)); ph != 0 {
		t.Fatalf("identity stagger: %d phases, want 0", ph)
	}
}

func TestSchedulePhasesValidAndComplete(t *testing.T) {
	f := func(n8 uint8, shift8 uint8, rev bool) bool {
		n := 2 + int(n8%24)
		s := int(shift8) % n
		var p []int
		if rev {
			p = ReverseStagger(n, s)
		} else {
			p = ForwardStagger(n, s)
		}
		phases := SchedulePhases(p)
		if len(phases) != CommPhases(p) {
			return false
		}
		moved := 0
		for _, ph := range phases {
			if !ValidPhase(ph) {
				return false
			}
			for _, tr := range ph {
				if p[tr.From] != tr.To {
					return false
				}
				moved++
			}
		}
		want := 0
		for k, v := range p {
			if k != v {
				want++
			}
		}
		return moved == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyColumnPermRealizesStagger(t *testing.T) {
	d := NewDense(6, 6)
	d.FillSequential()
	bm := Partition(d, 2) // 3×3 blocks
	p := ForwardStagger(3, 1)
	bm.ApplyColumnPerm(1, p) // shift row 1 of blocks left by 1
	// Block originally at (1,1) should now be at column 0.
	if b := bm.Block(1, 0); b.BR != 1 || b.BC != 1 {
		t.Fatalf("block at (1,0) has origin (%d,%d), want (1,1)", b.BR, b.BC)
	}
}

func TestApplyRowPermRealizesStagger(t *testing.T) {
	d := NewDense(6, 6)
	d.FillSequential()
	bm := Partition(d, 2)
	bm.ApplyRowPerm(2, ForwardStagger(3, 1))
	if b := bm.Block(0, 2); b.BR != 1 || b.BC != 2 {
		t.Fatalf("block at (0,2) has origin (%d,%d), want (1,2)", b.BR, b.BC)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 2)
	b.Set(1, 1, -3)
	if d := a.MaxAbsDiff(b); d != 3 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}

func TestCloneAndRowViews(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randDense(rng, 3, 4)
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
	row := a.Row(2)
	row[0] = 42
	if a.At(2, 0) != 42 {
		t.Fatal("Row is not a view")
	}
}
