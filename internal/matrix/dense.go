// Package matrix provides the dense linear-algebra substrate for the NavP
// case study: row-major dense matrices, two-level blocked views
// (distribution blocks on PEs, algorithmic blocks moved by carriers, §3.6
// of the paper), cache-blocked multiply kernels, phantom (shape-only)
// blocks for model-scale simulation, and the forward/reverse staggering
// schedules compared in §5(3).
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major dense matrix of float64.
type Dense struct {
	Rows, Cols int
	// Stride is the row stride of Data; Stride >= Cols.
	Stride int
	Data   []float64
}

// NewDense returns a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns a view of row i (valid until the matrix is modified).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// Clone returns a deep copy with a compact stride.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(c.Row(i), m.Row(i))
	}
	return c
}

// FillRandom fills the matrix with uniform values in [-1, 1) from rng.
func (m *Dense) FillRandom(rng *rand.Rand) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 2*rng.Float64() - 1
		}
	}
}

// FillSequential fills element (i, j) with a small deterministic value
// derived from its coordinates. Useful for tests that need recognizable
// content.
func (m *Dense) FillSequential() {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			m.Set(i, j, float64(i*m.Cols+j)/float64(len(m.Data)))
		}
	}
}

// EqualApprox reports whether m and n have the same shape and all
// corresponding elements within tol of each other.
func (m *Dense) EqualApprox(n *Dense, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-n.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// m and n, which must have the same shape.
func (m *Dense) MaxAbsDiff(n *Dense) float64 {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("matrix: shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if d := math.Abs(m.At(i, j) - n.At(i, j)); d > max {
				max = d
			}
		}
	}
	return max
}

// Mul returns a×b through the packed serial kernel (kernel.go). Its
// result agrees with the naive reference mulNaive to floating-point
// reassociation tolerance; kernel_test.go holds the equivalence suite.
func Mul(a, b *Dense) *Dense {
	return Kernel{}.Mul(a, b)
}

// MulNaive returns a×b computed with the straightforward i-j-k triple
// loop of the paper's Figure 2 — the sequential program the paper
// incrementally parallelizes. It is the correctness oracle for every
// kernel and parallel implementation in this repository, and the
// recorded baseline the BENCH_kernels.json regression numbers are
// measured against.
func MulNaive(a, b *Dense) *Dense { return mulNaive(a, b) }

// mulNaive is the unoptimized reference, kept loop-for-loop as the
// paper wrote it (dot-product order, column-strided B access, no
// data-dependent skip so timing is input independent).
func mulNaive(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: inner dimension mismatch %d vs %d", a.Cols, b.Rows))
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += arow[k] * b.Data[k*b.Stride+j]
			}
			crow[j] += s
		}
	}
	return c
}

// MulSaxpy returns a×b with the cache-friendly i-k-j loop order (row
// saxpy): the intermediate point between the paper's naive loop and the
// packed kernel, recorded in BENCH_kernels.json so the perf trajectory
// shows what loop order alone buys.
func MulSaxpy(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: inner dimension mismatch %d vs %d", a.Cols, b.Rows))
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// MulBlocked returns a×b computed with the packed kernel using the
// given algorithmic block size as its cache-blocking granule — the
// sequential kernel the paper times. Shapes need not be multiples of
// the block size.
func MulBlocked(a, b *Dense, block int) *Dense {
	if block <= 0 {
		panic("matrix: block size must be positive")
	}
	return Kernel{mc: block, kc: block}.Mul(a, b)
}
