package matrix

import "math/rand"

// NewSeeded returns a deterministic random source for data generation.
// The kernels thread one of these explicitly through every generation
// path instead of touching the global math/rand source (which the
// simsafe analyzer forbids in sim-domain code), so the same seed always
// regenerates bit-identical inputs.
func NewSeeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RandomDense returns an r×c dense matrix filled from rng.
func RandomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	m.FillRandom(rng)
	return m
}

// RandomPair returns two n×n matrices drawn consecutively from rng —
// the (A, B) input pair shared by the multiplication kernels. Drawing
// both from one source keeps a kernel's inputs a single reproducible
// stream: regenerating with the same seed yields the same pair.
func RandomPair(rng *rand.Rand, n int) (a, b *Dense) {
	a = RandomDense(rng, n, n)
	b = RandomDense(rng, n, n)
	return a, b
}
