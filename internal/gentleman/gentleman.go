// Package gentleman implements the paper's message-passing baseline (§4):
// Gentleman's Algorithm for parallel matrix multiplication on a P×P
// process grid, as an SPMD program over the MPI-like internal/mp library.
//
// The transcription follows Figure 16 plus the implementation notes of
// §4 and §5:
//
//   - block partitioning: each rank owns an (N/P)×(N/P) distribution
//     block of A, B, and C, itself decomposed into algorithmic blocks
//     that are communicated and multiplied individually;
//   - initial staggering done in a single step over the fully connected
//     switch (direct sends to the final destination) rather than i
//     repeated neighbor shifts — the Cannon variant below does it
//     stepwise for comparison;
//   - non-blocking receives (Irecv) paired with blocking sends to avoid
//     deadlock on the toroidal shift exchange;
//   - pointer swapping for blocks a rank shifts to itself, avoiding local
//     copies (disable with CopyLocal for the ablation benchmark);
//   - the "straightforward" structure the paper critiques: each shift
//     step receives all blocks, then computes all blocks — an artificial
//     sequential order with no communication/computation overlap. The
//     Overlap variant posts the next shift before computing, the fix the
//     paper says costs "significantly more programming work".
package gentleman

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/mp"
)

// Variant selects the algorithm flavor.
type Variant int

const (
	// Gentleman is Figure 16 with single-step staggering.
	Gentleman Variant = iota
	// Cannon staggers stepwise (row i shifts west i times), as in
	// Cannon's original algorithm on a torus without a crossbar.
	Cannon
	// Overlap is Gentleman with communication/computation overlap: the
	// next shift's receives and sends are posted before computing the
	// current step. The paper's §5(1) discusses exactly this fix.
	Overlap
)

// String returns the variant name used in benchmark tables.
func (v Variant) String() string {
	switch v {
	case Gentleman:
		return "MPI (Gentleman)"
	case Cannon:
		return "MPI (Cannon)"
	case Overlap:
		return "MPI (overlap)"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Config describes one run.
type Config struct {
	// N is the matrix order, BS the algorithmic block size, P the process
	// grid order (P×P ranks). N must be a multiple of BS and N/BS a
	// multiple of P.
	N, BS, P int
	// Phantom selects shape-only blocks (model-scale runs).
	Phantom bool
	// Real selects the real-goroutine backend.
	Real bool
	// CopyLocal disables pointer swapping: blocks a rank shifts to itself
	// are copied through memory at CopyRate bytes/s, charged as CPU time.
	// This is the §4 ablation ("instead of sending an algorithmic block
	// to a PE itself, or copying ..., we use pointer swapping").
	CopyLocal bool
	// CopyRate is the local memory-copy bandwidth for CopyLocal runs.
	CopyRate float64
	// HW is the simulated hardware (ignored when Real).
	HW machine.Config
	// TuneCluster, if non-nil, adjusts the simulated hardware after
	// construction (heterogeneous experiments). Ignored when Real.
	TuneCluster func(*machine.Cluster)
	// Seed feeds the input generator.
	Seed int64
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.N <= 0 || c.BS <= 0 || c.P <= 0 {
		return fmt.Errorf("gentleman: N=%d BS=%d P=%d must be positive", c.N, c.BS, c.P)
	}
	if c.N%c.BS != 0 {
		return fmt.Errorf("gentleman: N=%d must be a multiple of BS=%d", c.N, c.BS)
	}
	if (c.N/c.BS)%c.P != 0 {
		return fmt.Errorf("gentleman: block grid order %d must be a multiple of P=%d", c.N/c.BS, c.P)
	}
	if c.N/c.BS/c.P > 64 {
		return fmt.Errorf("gentleman: local block grid %d exceeds the 64×64 tag space", c.N/c.BS/c.P)
	}
	if c.Phantom && c.Real {
		return fmt.Errorf("gentleman: phantom blocks have no real-backend value")
	}
	if c.CopyLocal && c.CopyRate <= 0 {
		return fmt.Errorf("gentleman: CopyLocal requires a positive CopyRate")
	}
	return nil
}

// Result reports one run.
type Result struct {
	Variant Variant
	// Seconds is the virtual finish time (sim backend only).
	Seconds float64
	// C is the assembled product, nil for phantom runs.
	C *matrix.Dense
}

// Run executes the chosen variant and returns its result.
func Run(v Variant, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var world *mp.World
	if cfg.Real {
		world = mp.NewRealWorld(cfg.P * cfg.P)
	} else {
		world = mp.NewSimWorld(cfg.HW, cfg.P*cfg.P)
	}
	if cfg.TuneCluster != nil && !cfg.Real {
		cfg.TuneCluster(world.Cluster())
	}
	st := newState(v, cfg)
	if err := world.Run(st.program); err != nil {
		return nil, fmt.Errorf("gentleman: %v: %w", v, err)
	}
	res := &Result{Variant: v}
	if !cfg.Real {
		res.Seconds = world.VirtualTime()
	}
	if !cfg.Phantom {
		res.C = st.out.Assemble()
	}
	return res, nil
}

// state is shared setup across ranks: the partitioned inputs and the
// output collector. Ranks touch disjoint blocks, so no locking is needed.
type state struct {
	v    Variant
	cfg  Config
	cart mp.Cart2D
	// NB is the global block-grid order; db the local block-grid order
	// per rank (NB/P).
	NB, db int
	elem   int
	A, B   *matrix.Blocked
	out    *matrix.Blocked
}

func newState(v Variant, cfg Config) *state {
	st := &state{v: v, cfg: cfg, cart: mp.NewCart2D(cfg.P, cfg.P), NB: cfg.N / cfg.BS}
	st.db = st.NB / cfg.P
	st.elem = cfg.HW.ElemBytes
	if st.elem == 0 {
		st.elem = 8
	}
	if cfg.Phantom {
		st.A = matrix.NewBlocked(cfg.N, cfg.BS, true)
		st.B = matrix.NewBlocked(cfg.N, cfg.BS, true)
		st.out = matrix.NewBlocked(cfg.N, cfg.BS, true)
	} else {
		a, b := Inputs(cfg)
		st.A = matrix.Partition(a, cfg.BS)
		st.B = matrix.Partition(b, cfg.BS)
		st.out = matrix.NewBlocked(cfg.N, cfg.BS, false)
	}
	return st
}

// Inputs returns the dense inputs generated for cfg (for verification).
func Inputs(cfg Config) (a, b *matrix.Dense) {
	return matrix.RandomPair(matrix.NewSeeded(cfg.Seed), cfg.N)
}

// local is one rank's working set: db×db algorithmic blocks of A, B, C.
type local struct {
	a, b, c [][]*matrix.Block
}

// program is the SPMD body executed by every rank.
func (st *state) program(r *mp.Rank) {
	row, col := st.cart.Coords(r.ID())
	l := st.loadLocal(row, col)

	// Initial staggering: A moves i steps west, B moves j steps north.
	switch st.v {
	case Cannon:
		for s := 0; s < row; s++ {
			st.shift(r, l.a, st.cart.West(r.ID()), st.cart.East(r.ID()), tagA(s))
		}
		for s := 0; s < col; s++ {
			st.shift(r, l.b, st.cart.North(r.ID()), st.cart.South(r.ID()), tagB(s))
		}
		// Ranks finish their staggering at different times; realign.
		r.Barrier()
	default:
		// Single-step staggering over the crossbar: A(row,col) goes
		// directly to (row, col-row); we receive from (row, col+row).
		st.stagger(r, l.a, st.cart.RankOf(row, col-row), st.cart.RankOf(row, col+row), tagA(0))
		st.stagger(r, l.b, st.cart.RankOf(row-col, col), st.cart.RankOf(row+col, col), tagB(0))
	}

	// C = A×B, then P−1 shift-and-accumulate steps.
	if st.v == Overlap {
		st.overlappedSteps(r, l)
	} else {
		st.multiplyAdd(r, l)
		for k := 0; k < st.cfg.P-1; k++ {
			st.shift(r, l.a, st.cart.West(r.ID()), st.cart.East(r.ID()), tagA(k+1))
			st.shift(r, l.b, st.cart.North(r.ID()), st.cart.South(r.ID()), tagB(k+1))
			st.multiplyAdd(r, l)
		}
	}

	st.storeLocal(row, col, l)
}

// Distinct tag spaces for A shifts and B shifts per step; blockTag makes
// the tag unique per algorithmic block so that concurrent non-blocking
// transfers cannot be matched out of order.
func tagA(step int) int { return 2 * step }
func tagB(step int) int { return 2*step + 1 }

// blockTag folds a block's local coordinates into the step tag. Local
// grids are capped at 64×64 blocks per rank by Validate.
func blockTag(base, bi, bj int) int { return base*4096 + bi*64 + bj }

// loadLocal copies this rank's distribution blocks out of the global
// partitioned inputs and zeroes its C.
func (st *state) loadLocal(row, col int) *local {
	l := &local{}
	l.a = st.sliceDist(st.A, row, col, true)
	l.b = st.sliceDist(st.B, row, col, true)
	l.c = make([][]*matrix.Block, st.db)
	for bi := 0; bi < st.db; bi++ {
		l.c[bi] = make([]*matrix.Block, st.db)
		for bj := 0; bj < st.db; bj++ {
			gi, gj := row*st.db+bi, col*st.db+bj
			ref := st.A.Block(gi, 0)
			if st.cfg.Phantom {
				l.c[bi][bj] = matrix.NewPhantomBlock(gi, gj, ref.Rows, ref.Rows)
			} else {
				l.c[bi][bj] = matrix.NewBlock(gi, gj, ref.Rows, ref.Rows)
			}
		}
	}
	return l
}

// sliceDist extracts the db×db algorithmic blocks of rank (row,col)'s
// distribution block, cloning when clone is set (ranks mutate their
// working copies as blocks shift through).
func (st *state) sliceDist(m *matrix.Blocked, row, col int, clone bool) [][]*matrix.Block {
	out := make([][]*matrix.Block, st.db)
	for bi := 0; bi < st.db; bi++ {
		out[bi] = make([]*matrix.Block, st.db)
		for bj := 0; bj < st.db; bj++ {
			blk := m.Block(row*st.db+bi, col*st.db+bj)
			if clone {
				blk = blk.Clone()
			}
			out[bi][bj] = blk
		}
	}
	return out
}

// storeLocal writes this rank's C distribution block into the shared
// output (disjoint per rank).
func (st *state) storeLocal(row, col int, l *local) {
	if st.cfg.Phantom {
		return
	}
	for bi := 0; bi < st.db; bi++ {
		for bj := 0; bj < st.db; bj++ {
			st.out.SetBlock(row*st.db+bi, col*st.db+bj, l.c[bi][bj])
		}
	}
}

// multiplyAdd performs C += A×B over the rank's local algorithmic blocks
// in the straightforward loop order the paper describes.
func (st *state) multiplyAdd(r *mp.Rank, l *local) {
	bs := float64(st.cfg.BS)
	flops := 2 * bs * bs * bs
	for bi := 0; bi < st.db; bi++ {
		for bj := 0; bj < st.db; bj++ {
			c := l.c[bi][bj]
			for k := 0; k < st.db; k++ {
				a, b := l.a[bi][k], l.b[k][bj]
				r.Compute(flops, func() { matrix.MulAdd(c, a, b) })
			}
		}
	}
}

// shift exchanges a whole distribution block with the toroidal neighbors:
// every algorithmic block is sent to rank to and replaced by one received
// from rank from. Self-shifts use pointer swapping (free) unless
// CopyLocal charges a memory copy.
func (st *state) shift(r *mp.Rank, blocks [][]*matrix.Block, to, from int, tag int) {
	if to == r.ID() {
		st.localPass(r, blocks)
		return
	}
	// Post all receives first (MPI_Irecv), then blocking-send all blocks,
	// then wait — the deadlock-free pattern of §4.
	reqs := make([][]*mp.Request, st.db)
	for bi := range blocks {
		reqs[bi] = make([]*mp.Request, st.db)
		for bj := range blocks[bi] {
			reqs[bi][bj] = r.Irecv(from, blockTag(tag, bi, bj))
		}
	}
	for bi := range blocks {
		for bj, blk := range blocks[bi] {
			r.Send(to, blockTag(tag, bi, bj), blk, blk.Bytes(st.elem))
		}
	}
	for bi := range blocks {
		for bj := range blocks[bi] {
			blocks[bi][bj] = st.receive(r, reqs[bi][bj])
		}
	}
}

// receive completes a posted block receive. With pointer swapping (the
// default, §4) the received block is adopted by reference; the CopyLocal
// ablation instead charges the memcpy out of the receive buffer that a
// swap-free implementation performs for every arriving block.
func (st *state) receive(r *mp.Rank, req *mp.Request) *matrix.Block {
	blk := r.Wait(req).(*matrix.Block)
	if st.cfg.CopyLocal {
		r.Compute(float64(blk.Bytes(st.elem))/st.cfg.CopyRate*st.cfg.HW.CPURate, nil)
	}
	return blk
}

// localPass handles a shift whose source and destination are this rank:
// pointer swapping makes it free; the CopyLocal ablation charges a
// straight memory copy of every block instead (the paper: "instead of
// sending an algorithmic block to a PE itself, or copying an algorithmic
// block from a local memory, we use pointer swapping").
func (st *state) localPass(r *mp.Rank, blocks [][]*matrix.Block) {
	if !st.cfg.CopyLocal {
		return // pointer swap: nothing moves
	}
	var bytes int64
	for bi := range blocks {
		for _, blk := range blocks[bi] {
			bytes += blk.Bytes(st.elem)
		}
	}
	// A memcpy is CPU-bound; charge it there. The copy itself is not
	// performed — the blocks are immutable inputs either way.
	r.Compute(float64(bytes)/st.cfg.CopyRate*st.cfg.HW.CPURate, nil)
}

// stagger performs the single-step initial skew: send every local block
// of m directly to rank to, receive replacements from rank from.
func (st *state) stagger(r *mp.Rank, blocks [][]*matrix.Block, to, from int, tag int) {
	st.shift(r, blocks, to, from, tag)
}

// overlappedSteps runs all P steps with communication/computation
// overlap: at each step the next shift's receives and sends are posted
// before the current step's computation, so the wait for arriving blocks
// is hidden behind the multiply. The blocks being sent are immutable, so
// computing with them while they are in flight is safe.
func (st *state) overlappedSteps(r *mp.Rank, l *local) {
	west, east := st.cart.West(r.ID()), st.cart.East(r.ID())
	north, south := st.cart.North(r.ID()), st.cart.South(r.ID())

	type pending struct {
		reqs   [][]*mp.Request
		sends  []*mp.Request
		blocks [][]*matrix.Block
	}
	post := func(blocks [][]*matrix.Block, to, from, tag int) *pending {
		if to == r.ID() {
			st.localPass(r, blocks)
			return nil
		}
		p := &pending{blocks: blocks, reqs: make([][]*mp.Request, st.db)}
		for bi := range blocks {
			p.reqs[bi] = make([]*mp.Request, st.db)
			for bj := range blocks[bi] {
				p.reqs[bi][bj] = r.Irecv(from, blockTag(tag, bi, bj))
			}
		}
		// Non-blocking sends: the transfers proceed while this rank
		// computes — the overlap MPI only grants when the programmer
		// restructures the code around Isend (the paper's point).
		for bi := range blocks {
			for bj, blk := range blocks[bi] {
				p.sends = append(p.sends, r.Isend(to, blockTag(tag, bi, bj), blk, blk.Bytes(st.elem)))
			}
		}
		return p
	}
	collect := func(p *pending) {
		if p == nil {
			return
		}
		for _, sreq := range p.sends {
			r.Wait(sreq)
		}
		for bi := range p.reqs {
			for bj := range p.reqs[bi] {
				p.blocks[bi][bj] = st.receive(r, p.reqs[bi][bj])
			}
		}
	}

	for k := 0; k < st.cfg.P-1; k++ {
		pa := post(l.a, west, east, tagA(k+1))
		pb := post(l.b, north, south, tagB(k+1))
		st.multiplyAdd(r, l) // step k, with the transfers in flight
		collect(pa)
		collect(pb)
	}
	st.multiplyAdd(r, l) // final step
}
