package gentleman

import (
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/matrix"
)

func testConfig(n, bs, p int) Config {
	return Config{N: n, BS: bs, P: p, HW: machine.SunBlade100(), Seed: 7}
}

func verify(t *testing.T, v Variant, cfg Config) *Result {
	t.Helper()
	res, err := Run(v, cfg)
	if err != nil {
		t.Fatalf("%v: %v", v, err)
	}
	a, b := Inputs(cfg)
	want := matrix.Mul(a, b)
	if res.C == nil {
		t.Fatalf("%v: no result", v)
	}
	if d := res.C.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("%v: result differs from reference by %g", v, d)
	}
	return res
}

func TestVariantsCorrectSim(t *testing.T) {
	for _, v := range []Variant{Gentleman, Cannon, Overlap} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			verify(t, v, testConfig(24, 4, 3))
		})
	}
}

func TestVariantsCorrectReal(t *testing.T) {
	for _, v := range []Variant{Gentleman, Cannon, Overlap} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cfg := testConfig(24, 4, 3)
			cfg.Real = true
			verify(t, v, cfg)
		})
	}
}

func TestAcrossGeometries(t *testing.T) {
	cases := []struct{ n, bs, p int }{
		{8, 4, 2},
		{16, 4, 4},
		{36, 6, 3},
		{40, 4, 5},
		{12, 4, 3}, // one algorithmic block per rank: the fine-grained case
	}
	for _, tc := range cases {
		for _, v := range []Variant{Gentleman, Cannon, Overlap} {
			v, tc := v, tc
			t.Run(fmt.Sprintf("%v/N%d-BS%d-P%d", v, tc.n, tc.bs, tc.p), func(t *testing.T) {
				verify(t, v, testConfig(tc.n, tc.bs, tc.p))
			})
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		testConfig(10, 4, 2),                            // N not multiple of BS
		testConfig(16, 4, 3),                            // NB not multiple of P
		{N: 16, BS: 4, P: 2, CopyLocal: true},           // CopyLocal without rate
		{N: 0, BS: 4, P: 2},                             // zero N
		{N: 16, BS: 4, P: 2, Phantom: true, Real: true}, // phantom+real
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestPhantomMatchesRealSchedule(t *testing.T) {
	for _, v := range []Variant{Gentleman, Cannon, Overlap} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cfg := testConfig(24, 4, 3)
			real, err := Run(v, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Phantom = true
			ph, err := Run(v, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if real.Seconds != ph.Seconds {
				t.Fatalf("schedules diverge: %v vs %v", real.Seconds, ph.Seconds)
			}
		})
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	cfg := testConfig(24, 4, 3)
	cfg.Phantom = true
	first, err := Run(Gentleman, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(Gentleman, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again.Seconds != first.Seconds {
			t.Fatalf("virtual time differs: %v vs %v", again.Seconds, first.Seconds)
		}
	}
}

func TestPaperScaleOrderings(t *testing.T) {
	// At the paper's granularity: single-step staggering beats stepwise
	// (Cannon), and overlapping communication with computation beats the
	// straightforward structure — the §5(1) discussion.
	cfg := testConfig(1536, 128, 3)
	cfg.Phantom = true
	times := map[Variant]float64{}
	for _, v := range []Variant{Gentleman, Cannon, Overlap} {
		res, err := Run(v, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		times[v] = res.Seconds
	}
	if times[Gentleman] >= times[Cannon] {
		t.Errorf("single-step staggering (%v) not faster than stepwise (%v)", times[Gentleman], times[Cannon])
	}
	if times[Overlap] >= times[Gentleman] {
		t.Errorf("overlapped variant (%v) not faster than straightforward (%v)", times[Overlap], times[Gentleman])
	}
}

func TestPointerSwapAblation(t *testing.T) {
	// Disabling pointer swapping must cost time (local copies are charged)
	// and must not change the result.
	cfg := testConfig(24, 4, 3)
	base := verify(t, Gentleman, cfg)

	// A deliberately slow copy rate puts the row-0/column-0 ranks (whose
	// staggering is a self-shift) on the critical path.
	cfg.CopyLocal = true
	cfg.CopyRate = 1e3
	copied := verify(t, Gentleman, cfg)
	if copied.Seconds <= base.Seconds {
		t.Fatalf("CopyLocal run (%v) not slower than pointer-swapped (%v)", copied.Seconds, base.Seconds)
	}
}

func TestGentlemanSpeedupShape(t *testing.T) {
	// On a 3×3 grid at paper scale the MPI code achieves a healthy but
	// sub-linear speedup (paper Table 4: 6.0–7.3 on 9 PEs).
	cfg := testConfig(1536, 128, 3)
	cfg.Phantom = true
	res, err := Run(Gentleman, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := 2 * float64(cfg.N) * float64(cfg.N) * float64(cfg.N) / cfg.HW.CPURate
	speedup := seq / res.Seconds
	if speedup < 4.5 || speedup > 9 {
		t.Fatalf("Gentleman 3×3 speedup %.2f outside the plausible band [4.5, 9]", speedup)
	}
}
