package trace

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/navp"
)

func record() (*Recorder, *navp.System) {
	rec := New()
	sys := navp.NewSim(navp.DefaultConfig(), machine.SunBlade100(), 3)
	sys.SetTracer(rec)
	return rec, sys
}

func TestRecorderCollectsAndSummarizes(t *testing.T) {
	rec, sys := record()
	sys.Inject(0, "walker", func(ag *navp.Agent) {
		ag.Set("x", nil, 1000)
		ag.Hop(1)
		ag.Compute(110.7e6, nil) // ~1 s
		ag.SignalEvent("e")
		ag.WaitEvent("e")
		ag.Hop(2)
		ag.Compute(110.7e6, nil)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Hops != 2 {
		t.Fatalf("hops = %d", st.Hops)
	}
	if st.HopBytes < 2000 {
		t.Fatalf("hop bytes = %d", st.HopBytes)
	}
	if st.ComputeTime < 1.9 || st.ComputeTime > 2.1 {
		t.Fatalf("compute time = %v", st.ComputeTime)
	}
	if st.Agents != 1 {
		t.Fatalf("agents = %d", st.Agents)
	}
	if st.Finish <= 0 {
		t.Fatal("no finish time")
	}
}

func TestHopMatrix(t *testing.T) {
	rec, sys := record()
	sys.Inject(0, "a", func(ag *navp.Agent) {
		ag.Set("x", nil, 500)
		ag.Hop(1)
		ag.Hop(2)
		ag.Hop(1)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	m := rec.HopMatrix(3)
	if m[0][1] == 0 || m[1][2] == 0 || m[2][1] == 0 {
		t.Fatalf("matrix = %v", m)
	}
	if m[0][2] != 0 {
		t.Fatalf("phantom transfer recorded: %v", m)
	}
}

func TestSpaceTimeRendersOccupancy(t *testing.T) {
	rec, sys := record()
	for i := 0; i < 2; i++ {
		i := i
		sys.Inject(i, "agent", func(ag *navp.Agent) {
			ag.Compute(110.7e6, nil)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	art := rec.SpaceTime(3, 10)
	if !strings.Contains(art, "legend:") {
		t.Fatal("no legend")
	}
	if !strings.Contains(art, "0") || !strings.Contains(art, "1") {
		t.Fatalf("agent symbols missing:\n%s", art)
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 12 { // header + 10 rows + legend
		t.Fatalf("unexpected line count %d:\n%s", len(lines), art)
	}
}

func TestSpaceTimeEmptyTrace(t *testing.T) {
	rec := New()
	if got := rec.SpaceTime(2, 5); !strings.Contains(got, "empty") {
		t.Fatalf("got %q", got)
	}
}

func TestLayoutListsNodeVariables(t *testing.T) {
	_, sys := record()
	sys.Node(0).Set("B:0:0", 1)
	sys.Node(2).Set("C:1:1", 1)
	out := Layout(sys, 1, 3)
	if !strings.Contains(out, "node(0): B:0:0") || !strings.Contains(out, "node(2): C:1:1") {
		t.Fatalf("layout:\n%s", out)
	}
	out2d := Layout(sys, 3, 1)
	if !strings.Contains(out2d, "node(2,0):") {
		t.Fatalf("2d layout:\n%s", out2d)
	}
}

func TestRecorderThreadSafe(t *testing.T) {
	// Record from the real backend under -race.
	rec := New()
	sys := navp.NewReal(navp.DefaultConfig(), 2)
	sys.SetTracer(rec)
	for i := 0; i < 8; i++ {
		sys.Inject(i%2, "a", func(ag *navp.Agent) {
			for j := 0; j < 10; j++ {
				ag.Hop((ag.Node().ID() + 1) % 2)
				ag.Compute(0, nil)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() < 160 {
		t.Fatalf("events = %d", rec.Len())
	}
}

func TestSpaceTimeManyAgentsSymbolFallback(t *testing.T) {
	// More agents than the symbol alphabet: the renderer must fall back
	// to '*' and truncate the legend instead of panicking.
	rec, sys := record()
	for i := 0; i < 70; i++ {
		i := i
		sys.Inject(i%3, fmt.Sprintf("agent%02d", i), func(ag *navp.Agent) {
			ag.Compute(1e6, nil)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	art := rec.SpaceTime(3, 8)
	if !strings.Contains(art, "agents)") {
		t.Fatalf("legend not truncated:\n%s", art)
	}
}

func TestLayoutTruncatesLongVarLists(t *testing.T) {
	_, sys := record()
	for i := 0; i < 20; i++ {
		sys.Node(0).Set(fmt.Sprintf("var%02d", i), i)
	}
	out := Layout(sys, 1, 3)
	if !strings.Contains(out, "(20 vars)") {
		t.Fatalf("layout not truncated:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	rec, sys := record()
	sys.Inject(0, "a", func(ag *navp.Agent) {
		ag.Set("x", nil, 100)
		ag.Hop(1)
		ag.Compute(1e6, nil)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kind,agent,from,to,label,bytes,start,end\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, `hop,"a",0,1`) || !strings.Contains(out, `compute,"a",1,1`) {
		t.Fatalf("events missing:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != rec.Len()+1 {
		t.Fatalf("lines = %d, events = %d", lines, rec.Len())
	}
}
