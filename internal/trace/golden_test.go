package trace

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/navp"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chaosTrace builds a fixed event sequence exercising every fault mark:
// three PEs computing, a dropped frame with its retry on PE 0, a kill and
// recovery on PE 1, and an undisturbed hop. Hand-built events keep the
// golden file independent of scheduler timing.
func chaosTrace() *Recorder {
	rec := New()
	ev := func(kind navp.TraceKind, agent string, from, to int, bytes int64, start, end sim.Time, label string) {
		rec.Record(navp.TraceEvent{Kind: kind, Agent: agent, From: from, To: to,
			Bytes: bytes, Start: start, End: end, Label: label})
	}
	ev(navp.TraceCompute, "alpha", 0, 0, 0, 0.0, 3.0, "")
	ev(navp.TraceCompute, "beta", 1, 1, 0, 0.0, 2.0, "")
	ev(navp.TraceCompute, "gamma", 2, 2, 0, 1.0, 7.0, "")
	ev(navp.TraceDrop, "alpha", 0, 1, 800, 3.0, 3.0, "")
	ev(navp.TraceRetry, "alpha", 0, 1, 800, 4.1, 4.1, "attempt 2")
	ev(navp.TraceHop, "alpha", 0, 1, 800, 4.2, 4.2, "")
	ev(navp.TraceKill, "", 1, 1, 0, 5.0, 5.0, "")
	ev(navp.TraceRecover, "", 1, 1, 0, 6.0, 6.0, "1 agents replayed")
	ev(navp.TraceCompute, "alpha", 1, 1, 0, 6.2, 8.0, "")
	return rec
}

func TestSpaceTimeFaultMarksGolden(t *testing.T) {
	got := chaosTrace().SpaceTime(3, 8)
	golden := filepath.Join("testdata", "spacetime_faults.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("space-time diagram drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSpaceTimeFaultPrecedence(t *testing.T) {
	// A kill and a retry in the same cell: the kill mark must win.
	rec := New()
	rec.Record(navp.TraceEvent{Kind: navp.TraceCompute, Agent: "a", From: 0, To: 0, Start: 0, End: 4})
	rec.Record(navp.TraceEvent{Kind: navp.TraceRetry, Agent: "a", From: 0, To: 1, Start: 1, End: 1})
	rec.Record(navp.TraceEvent{Kind: navp.TraceKill, From: 0, To: 0, Start: 1.2, End: 1.2})
	art := rec.SpaceTime(2, 4)
	if !strings.Contains(art, "#") {
		t.Fatalf("kill mark missing:\n%s", art)
	}
	// 'r' appears in the legend text; the diagram body itself must not
	// show the retry mark (cells are padded with two spaces).
	body := art[:strings.Index(art, "legend:")]
	if strings.Contains(body, "r  ") {
		t.Fatalf("retry mark shown despite kill in same cell:\n%s", art)
	}
	if !strings.Contains(art, "faults: x=drop, r=retry, #=kill, +=recover") {
		t.Fatalf("fault legend missing:\n%s", art)
	}
}

func TestSpaceTimeNoFaultLegendWhenClean(t *testing.T) {
	rec := New()
	rec.Record(navp.TraceEvent{Kind: navp.TraceCompute, Agent: "a", From: 0, To: 0, Start: 0, End: 1})
	if art := rec.SpaceTime(1, 4); strings.Contains(art, "faults:") {
		t.Fatalf("fault legend on a clean trace:\n%s", art)
	}
}

func TestStatsCountsFaults(t *testing.T) {
	st := chaosTrace().Stats()
	if st.Drops != 1 || st.Retries != 1 || st.Kills != 1 || st.Recovers != 1 {
		t.Fatalf("fault counts = %d/%d/%d/%d, want 1/1/1/1",
			st.Drops, st.Retries, st.Kills, st.Recovers)
	}
	if st.Hops != 1 || st.Agents != 4 { // alpha, beta, gamma, "" (daemon events)
		t.Fatalf("hops = %d, agents = %d", st.Hops, st.Agents)
	}
}
