package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/navp"
)

func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := chaosTrace().WritePerfetto(&buf, 3); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_chaos.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("perfetto export drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestPerfettoSchema validates the export against the trace_event
// contract Perfetto actually enforces: valid JSON, a traceEvents array,
// known phases, microsecond timestamps, dur on (and only on) complete
// spans, and a thread-name metadata record per PE track.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := chaosTrace().WritePerfetto(&buf, 3); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	tracks := map[float64]bool{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			args, _ := ev["args"].(map[string]any)
			name, _ := args["name"].(string)
			meta, _ := ev["name"].(string)
			switch meta {
			case "process_name":
				if name != "cluster" && !strings.HasPrefix(name, "job ") {
					t.Fatalf("event %d: process metadata without a group name: %v", i, ev)
				}
			case "thread_name":
				if !strings.HasPrefix(name, "PE ") {
					t.Fatalf("event %d: thread metadata without a PE name: %v", i, ev)
				}
				tracks[ev["tid"].(float64)] = true
			default:
				t.Fatalf("event %d: unknown metadata record %q: %v", i, meta, ev)
			}
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("event %d: complete span without dur: %v", i, ev)
			}
		case "i":
			if _, ok := ev["dur"]; ok {
				t.Fatalf("event %d: instant with dur: %v", i, ev)
			}
			if s, _ := ev["s"].(string); s != "t" {
				t.Fatalf("event %d: instant scope = %q, want \"t\"", i, s)
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ph)
		}
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d: missing ts: %v", i, ev)
			}
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event %d: missing name: %v", i, ev)
		}
	}
	if len(tracks) != 3 {
		t.Fatalf("got %d PE tracks, want 3", len(tracks))
	}
}

// TestPerfettoJobTracks checks the multi-tenant export: events tagged
// with a job land in that job's own process group, untagged runtime
// events stay in the base "cluster" group, and pid assignment follows
// ascending job order regardless of the interleaving recorded.
func TestPerfettoJobTracks(t *testing.T) {
	rec := New()
	rec.Record(navp.TraceEvent{Kind: navp.TraceHop, Job: 7, Agent: "b", From: 0, To: 1, Start: 1, End: 1})
	rec.Record(navp.TraceEvent{Kind: navp.TraceHop, Job: 3, Agent: "a", From: 1, To: 0, Start: 2, End: 2})
	rec.Record(navp.TraceEvent{Kind: navp.TraceKill, From: 0, To: 0, Start: 3, End: 3})
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf, 2); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	groups := map[float64]string{} // pid -> process name
	byName := map[string]float64{} // event name -> pid
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			groups[ev["pid"].(float64)] = ev["args"].(map[string]any)["name"].(string)
		}
		if ev["ph"] != "M" {
			args, _ := ev["args"].(map[string]any)
			agent, _ := args["agent"].(string)
			byName[ev["name"].(string)+":"+agent] = ev["pid"].(float64)
			if ev["name"] == "kill" && ev["pid"].(float64) != 1 {
				t.Fatalf("untagged kill event on pid %v, want the cluster group", ev["pid"])
			}
		}
	}
	if len(groups) != 3 {
		t.Fatalf("got %d process groups %v, want cluster + 2 jobs", len(groups), groups)
	}
	if groups[1] != "cluster" || groups[2] != "job 3" || groups[3] != "job 7" {
		t.Fatalf("process groups %v, want pid1=cluster pid2=job 3 pid3=job 7", groups)
	}
	if byName["hop:a"] != 2 || byName["hop:b"] != 3 {
		t.Fatalf("job events landed on pids %v, want job 3 events on pid 2 and job 7 on pid 3", byName)
	}
}

func TestPerfettoDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := chaosTrace().WritePerfetto(&a, 3); err != nil {
		t.Fatal(err)
	}
	if err := chaosTrace().WritePerfetto(&b, 3); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("perfetto export is not deterministic")
	}
}

// TestSpaceTimeShowsZeroWidthCompute is the regression test for the
// boundary bug: the real backend stamps compute spans with Start == End,
// and a span exactly on the trace's finish time indexed one row past the
// diagram — both used to vanish.
func TestSpaceTimeShowsZeroWidthCompute(t *testing.T) {
	rec := New()
	// One real span to give the diagram a finish time, then zero-width
	// computes by a second agent, including one at the finish boundary.
	rec.Record(navp.TraceEvent{Kind: navp.TraceCompute, Agent: "wide", From: 0, To: 0, Start: 0, End: 4})
	rec.Record(navp.TraceEvent{Kind: navp.TraceCompute, Agent: "thin", From: 1, To: 1, Start: 2, End: 2})
	rec.Record(navp.TraceEvent{Kind: navp.TraceCompute, Agent: "thin", From: 1, To: 1, Start: 4, End: 4})
	art := rec.SpaceTime(2, 4)
	// Agent symbols: wide = '0', thin = '1'.
	if got := strings.Count(cellArea(t, art), "1"); got != 2 {
		t.Fatalf("zero-width spans visible = %d, want 2 (mid-run and finish boundary):\n%s", got, art)
	}
}

// cellArea strips the header, legend, and row time labels from a
// space-time diagram, leaving only the agent-symbol cells.
func cellArea(t *testing.T, art string) string {
	t.Helper()
	var cells strings.Builder
	for _, line := range strings.Split(art, "\n") {
		_, row, ok := strings.Cut(line, "s  ")
		if !ok || !strings.HasSuffix(line, " ") {
			continue // header, legend, or blank — not a diagram row
		}
		cells.WriteString(row)
		cells.WriteByte('\n')
	}
	if cells.Len() == 0 {
		t.Fatalf("no diagram rows found in:\n%s", art)
	}
	return cells.String()
}

// TestSpaceTimeZeroWidthDoesNotOutweighRealWork checks the epsilon
// credit loses the cell to any agent with genuine compute time there.
func TestSpaceTimeZeroWidthDoesNotOutweighRealWork(t *testing.T) {
	rec := New()
	rec.Record(navp.TraceEvent{Kind: navp.TraceCompute, Agent: "wide", From: 0, To: 0, Start: 0, End: 4})
	rec.Record(navp.TraceEvent{Kind: navp.TraceCompute, Agent: "thin", From: 0, To: 0, Start: 1, End: 1})
	art := rec.SpaceTime(1, 4)
	if strings.Contains(cellArea(t, art), "1") {
		t.Fatalf("epsilon occupancy beat a real compute span:\n%s", art)
	}
}
