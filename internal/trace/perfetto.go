package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/navp"
	"repro/internal/sim"
)

// perfettoEvent is one Chrome trace_event entry. The exported subset —
// metadata ("M"), complete spans ("X"), and instants ("i") — is what
// Perfetto and chrome://tracing render without a schema. Timestamps and
// durations are microseconds; Pid groups the run, Tid is the PE track.
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

const perfettoPid = 1

// usec converts a trace timestamp (seconds — virtual on the sim backend,
// wall since start on the real and wire runtimes) to microseconds.
func usec(t sim.Time) float64 { return float64(t) * 1e6 }

// WritePerfetto exports the recorded events as Chrome trace_event JSON,
// loadable in ui.perfetto.dev or chrome://tracing. Each PE gets one
// named track; compute and wait events become duration spans, hops
// become spans on the *destination* PE (where the transfer time is
// spent), and the fault-layer events — drops, retries, kills,
// recoveries — become instant markers. Event order within the file
// follows recording order, so the export is deterministic for
// deterministic traces.
//
// Multi-tenant traces (events tagged with a nonzero Job by the wire
// scheduler) are split into one process group per job — Perfetto's
// process rail — so each job's hops and retries read as its own
// pipeline, with the runtime's untagged events in the base "cluster"
// group. Job pids are assigned in ascending job order, keeping the
// export deterministic regardless of interleaving.
func (r *Recorder) WritePerfetto(w io.Writer, pes int) error {
	out := perfettoFile{DisplayTimeUnit: "ms", TraceEvents: []perfettoEvent{}}
	events := r.Events()
	jobs := []uint64{}
	seenJobs := map[uint64]bool{}
	for _, ev := range events {
		if ev.Job != 0 && !seenJobs[ev.Job] {
			seenJobs[ev.Job] = true
			jobs = append(jobs, ev.Job)
		}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i] < jobs[j] })
	pidFor := map[uint64]int{0: perfettoPid}
	for i, job := range jobs {
		pidFor[job] = perfettoPid + 1 + i
	}
	processName := func(pid int) string {
		if pid == perfettoPid {
			return "cluster"
		}
		return fmt.Sprintf("job %d", jobs[pid-perfettoPid-1])
	}
	for pid := perfettoPid; pid <= perfettoPid+len(jobs); pid++ {
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: "process_name", Phase: "M", Pid: pid,
			Args: map[string]any{"name": processName(pid)},
		})
		for pe := 0; pe < pes; pe++ {
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: "thread_name", Phase: "M", Pid: pid, Tid: pe,
				Args: map[string]any{"name": fmt.Sprintf("PE %d", pe)},
			})
		}
	}
	pid := perfettoPid // reassigned per event from its job tag
	span := func(name, cat string, tid int, start, end sim.Time, args map[string]any) perfettoEvent {
		d := usec(end) - usec(start)
		return perfettoEvent{Name: name, Phase: "X", Cat: cat,
			TS: usec(start), Dur: &d, Pid: pid, Tid: tid, Args: args}
	}
	instant := func(name, cat string, tid int, at sim.Time, args map[string]any) perfettoEvent {
		return perfettoEvent{Name: name, Phase: "i", Cat: cat, Scope: "t",
			TS: usec(at), Pid: pid, Tid: tid, Args: args}
	}
	clampTid := func(pe int) int {
		if pe < 0 {
			return 0
		}
		if pe >= pes {
			return pes - 1
		}
		return pe
	}
	for _, ev := range events {
		pid = pidFor[ev.Job]
		agent := map[string]any{"agent": ev.Agent}
		switch ev.Kind {
		case navp.TraceCompute:
			out.TraceEvents = append(out.TraceEvents,
				span("compute", "compute", clampTid(ev.From), ev.Start, ev.End, agent))
		case navp.TraceWait:
			out.TraceEvents = append(out.TraceEvents,
				span("wait:"+ev.Label, "wait", clampTid(ev.From), ev.Start, ev.End, agent))
		case navp.TraceHop:
			args := map[string]any{"agent": ev.Agent, "from": ev.From, "to": ev.To, "bytes": ev.Bytes}
			if ev.End > ev.Start {
				out.TraceEvents = append(out.TraceEvents,
					span("hop", "hop", clampTid(ev.To), ev.Start, ev.End, args))
			} else {
				out.TraceEvents = append(out.TraceEvents,
					instant("hop", "hop", clampTid(ev.To), ev.Start, args))
			}
		case navp.TraceSignal:
			out.TraceEvents = append(out.TraceEvents,
				instant("signal:"+ev.Label, "event", clampTid(ev.From), ev.Start, agent))
		case navp.TraceInject:
			out.TraceEvents = append(out.TraceEvents,
				instant("inject:"+ev.Label, "event", clampTid(ev.From), ev.Start, agent))
		case navp.TraceDrop:
			args := map[string]any{"agent": ev.Agent, "to": ev.To, "bytes": ev.Bytes}
			out.TraceEvents = append(out.TraceEvents,
				instant("drop", "fault", clampTid(ev.From), ev.Start, args))
		case navp.TraceRetry:
			args := map[string]any{"agent": ev.Agent, "to": ev.To, "attempt": ev.Label}
			out.TraceEvents = append(out.TraceEvents,
				instant("retry", "fault", clampTid(ev.From), ev.Start, args))
		case navp.TraceKill:
			out.TraceEvents = append(out.TraceEvents,
				instant("kill", "fault", clampTid(ev.From), ev.Start, nil))
		case navp.TraceRecover:
			args := map[string]any{"replayed": ev.Label}
			if ev.End > ev.Start {
				out.TraceEvents = append(out.TraceEvents,
					span("recover", "fault", clampTid(ev.From), ev.Start, ev.End, args))
			} else {
				out.TraceEvents = append(out.TraceEvents,
					instant("recover", "fault", clampTid(ev.From), ev.Start, args))
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}
