// Package trace records the observable actions of NavP agents — hops,
// computation spans, event waits — and renders them as ASCII space-time
// diagrams (space across, time down), the measured counterpart of the
// paper's Figure 1 schematics, and as per-PE data-movement summaries used
// by the experiment reports.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/navp"
	"repro/internal/sim"
)

// Recorder collects trace events. It is safe for concurrent use (the
// real backend records from many goroutines).
type Recorder struct {
	mu     sync.Mutex
	events []navp.TraceEvent
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Record implements navp.Tracer.
func (r *Recorder) Record(ev navp.TraceEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []navp.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]navp.TraceEvent(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Stats summarizes a run.
type Stats struct {
	// Hops is the number of inter-PE migrations; HopBytes their total
	// payload.
	Hops     int
	HopBytes int64
	// ComputeTime is the summed duration of compute spans across agents;
	// WaitTime the summed duration of event waits.
	ComputeTime, WaitTime sim.Time
	// Agents is the number of distinct agents observed.
	Agents int
	// Finish is the latest event end time.
	Finish sim.Time
	// Fault-injection counts: dropped hop frames, retransmission
	// attempts, daemon kills, and daemon recoveries.
	Drops, Retries, Kills, Recovers int
}

// Stats computes the run summary.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Stats
	agents := map[string]bool{}
	for _, ev := range r.events {
		agents[ev.Agent] = true
		if ev.End > s.Finish {
			s.Finish = ev.End
		}
		switch ev.Kind {
		case navp.TraceHop:
			s.Hops++
			s.HopBytes += ev.Bytes
		case navp.TraceCompute:
			s.ComputeTime += ev.End - ev.Start
		case navp.TraceWait:
			s.WaitTime += ev.End - ev.Start
		case navp.TraceDrop:
			s.Drops++
		case navp.TraceRetry:
			s.Retries++
		case navp.TraceKill:
			s.Kills++
		case navp.TraceRecover:
			s.Recovers++
		}
	}
	s.Agents = len(agents)
	return s
}

// HopMatrix returns bytes moved between each ordered PE pair;
// m[from][to] is the payload volume of hops from PE from to PE to.
func (r *Recorder) HopMatrix(pes int) [][]int64 {
	m := make([][]int64, pes)
	for i := range m {
		m[i] = make([]int64, pes)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ev := range r.events {
		if ev.Kind == navp.TraceHop && ev.From < pes && ev.To < pes {
			m[ev.From][ev.To] += ev.Bytes
		}
	}
	return m
}

// symbolFor assigns compact display runes to agents in order of first
// appearance.
var symbolAlphabet = []rune("0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz")

// SpaceTime renders the run as an ASCII space-time diagram: one column
// per PE (space, west to east), one row per time bucket (time, top to
// bottom), the paper's Figure 1 orientation. Each cell shows the symbol
// of the agent that computed longest on that PE during the bucket, '·'
// for idle. Fault-injection events overlay the compute cells — 'x' a
// dropped hop frame (at the sending PE), 'r' a retransmission, '#' a
// daemon kill, '+' a recovery — with kills taking precedence over
// recoveries over drops over retries. A legend maps symbols back to
// agent names; a second legend line appears when fault marks are shown.
func (r *Recorder) SpaceTime(pes, height int) string {
	if height <= 0 {
		height = 24
	}
	events := r.Events()
	var finish sim.Time
	for _, ev := range events {
		if ev.End > finish {
			finish = ev.End
		}
	}
	if finish == 0 {
		return "(empty trace)\n"
	}
	bucket := finish / sim.Time(height)

	// occupancy[row][pe][agent] = compute time in that cell.
	occupancy := make([]map[int]map[string]sim.Time, height)
	for i := range occupancy {
		occupancy[i] = map[int]map[string]sim.Time{}
	}
	symbols := map[string]rune{}
	order := []string{}
	sym := func(agent string) rune {
		if s, ok := symbols[agent]; ok {
			return s
		}
		s := rune('*')
		if len(order) < len(symbolAlphabet) {
			s = symbolAlphabet[len(order)]
		}
		symbols[agent] = s
		order = append(order, agent)
		return s
	}
	// Fault marks per cell, keeping the highest-precedence mark. Kills
	// and recoveries are recorded at the affected node (From == To);
	// drops and retries at the sending PE.
	faultRank := map[navp.TraceKind]int{
		navp.TraceRetry: 1, navp.TraceDrop: 2, navp.TraceRecover: 3, navp.TraceKill: 4,
	}
	faultRune := map[navp.TraceKind]rune{
		navp.TraceRetry: 'r', navp.TraceDrop: 'x', navp.TraceRecover: '+', navp.TraceKill: '#',
	}
	faults := make([]map[int]navp.TraceKind, height)
	anyFault := false
	for _, ev := range events {
		if faultRank[ev.Kind] == 0 {
			continue
		}
		row := int(ev.Start / bucket)
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		if faults[row] == nil {
			faults[row] = map[int]navp.TraceKind{}
		}
		if faultRank[ev.Kind] > faultRank[faults[row][ev.From]] {
			faults[row][ev.From] = ev.Kind
		}
		anyFault = true
	}

	for _, ev := range events {
		if ev.Kind != navp.TraceCompute {
			continue
		}
		sym(ev.Agent)
		if ev.End <= ev.Start {
			// Zero-width compute span (the real backend stamps Start ==
			// End): credit an epsilon of occupancy at its bucket, clamped
			// at the last row for spans on the finish boundary, so the
			// agent still appears instead of silently vanishing.
			row := int(ev.Start / bucket)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			if occupancy[row][ev.From] == nil {
				occupancy[row][ev.From] = map[string]sim.Time{}
			}
			occupancy[row][ev.From][ev.Agent] += bucket * 1e-12
			continue
		}
		for row := int(ev.Start / bucket); row < height; row++ {
			lo := sim.Time(row) * bucket
			hi := lo + bucket
			if ev.End <= lo {
				break
			}
			span := minT(ev.End, hi) - maxT(ev.Start, lo)
			if span <= 0 {
				continue
			}
			if occupancy[row][ev.From] == nil {
				occupancy[row][ev.From] = map[string]sim.Time{}
			}
			occupancy[row][ev.From][ev.Agent] += span
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time ↓   PE: ")
	for pe := 0; pe < pes; pe++ {
		fmt.Fprintf(&b, "%-3d", pe)
	}
	b.WriteByte('\n')
	for row := 0; row < height; row++ {
		fmt.Fprintf(&b, "%9.3fs  ", sim.Time(row)*bucket)
		for pe := 0; pe < pes; pe++ {
			best, bestSpan := '·', sim.Time(0)
			// Deterministic tie-breaking by agent appearance order.
			for _, agent := range order {
				if span := occupancy[row][pe][agent]; span > bestSpan {
					best, bestSpan = symbols[agent], span
				}
			}
			if k, ok := faults[row][pe]; ok {
				best = faultRune[k]
			}
			b.WriteRune(best)
			b.WriteString("  ")
		}
		b.WriteByte('\n')
	}
	b.WriteString("legend: ")
	for i, agent := range order {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c=%s", symbols[agent], agent)
		if i == 11 && len(order) > 12 {
			fmt.Fprintf(&b, ", … (%d agents)", len(order))
			break
		}
	}
	b.WriteByte('\n')
	if anyFault {
		b.WriteString("faults: x=drop, r=retry, #=kill, +=recover\n")
	}
	return b.String()
}

// Layout renders the node-variable placement of a NavP system as a
// per-PE listing — the measured counterpart of the paper's data-layout
// figures (4, 6, 8, 10, 12, 14). For 2-D systems pass the grid order;
// for 1-D pass cols = number of PEs and rows = 1.
func Layout(sys *navp.System, rows, cols int) string {
	var b strings.Builder
	for gr := 0; gr < rows; gr++ {
		for gc := 0; gc < cols; gc++ {
			id := gr*cols + gc
			names := sys.Node(id).VarNames()
			sort.Strings(names)
			if rows > 1 {
				fmt.Fprintf(&b, "node(%d,%d): ", gr, gc)
			} else {
				fmt.Fprintf(&b, "node(%d): ", gc)
			}
			if len(names) <= 12 {
				b.WriteString(strings.Join(names, " "))
			} else {
				b.WriteString(strings.Join(names[:12], " "))
				fmt.Fprintf(&b, " … (%d vars)", len(names))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func minT(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// WriteCSV streams the recorded events as CSV (kind, agent, from, to,
// label, bytes, start, end) for external analysis or plotting. Events
// appear in recording order.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "kind,agent,from,to,label,bytes,start,end\n"); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		_, err := fmt.Fprintf(w, "%s,%q,%d,%d,%q,%d,%.9f,%.9f\n",
			ev.Kind, ev.Agent, ev.From, ev.To, ev.Label, ev.Bytes, ev.Start, ev.End)
		if err != nil {
			return err
		}
	}
	return nil
}
