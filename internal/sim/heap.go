package sim

// timer is a scheduled wakeup for a process.
type timer struct {
	at  Time
	seq uint64 // creation order, breaks ties deterministically
	p   *Proc
}

// timerHeap is a binary min-heap of timers ordered by (at, seq). It is
// hand-rolled rather than using container/heap to avoid interface boxing
// on the simulator's hottest path.
type timerHeap struct {
	s []timer
}

func (h *timerHeap) Len() int    { return len(h.s) }
func (h *timerHeap) peek() timer { return h.s[0] }

func (h *timerHeap) less(i, j int) bool {
	if h.s[i].at != h.s[j].at {
		return h.s[i].at < h.s[j].at
	}
	return h.s[i].seq < h.s[j].seq
}

func (h *timerHeap) push(t timer) {
	h.s = append(h.s, t)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

func (h *timerHeap) pop() timer {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.s) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.s) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.s[i], h.s[smallest] = h.s[smallest], h.s[i]
		i = smallest
	}
	return top
}
