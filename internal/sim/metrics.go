package sim

import "repro/internal/metrics"

// Metric names exposed by the kernel.
const (
	// Process dispatches: every time the scheduler hands the virtual CPU
	// to a runnable process.
	MetricEventsDispatched = "sim.events.dispatched"
	// The virtual-time horizon in microseconds: how far the clock has
	// advanced through timed wakeups.
	MetricTimeHorizonUS = "sim.time.horizon_us"
)

// SetMetrics points the kernel's instrumentation at r. Call it before
// Run; a nil registry (the default) discards all updates. The metrics
// are pure functions of the deterministic schedule, so the same program
// yields the same values on every run.
func (k *Kernel) SetMetrics(r *metrics.Registry) {
	k.metDispatched = r.Counter(MetricEventsDispatched)
	k.metHorizon = r.Gauge(MetricTimeHorizonUS)
}
