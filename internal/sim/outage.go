package sim

// Outage tracks unavailability windows for a set of stations (PEs,
// daemons, links) in virtual time. A failed station is down until a fixed
// recovery instant; work arriving during the window waits for the
// recovery. It is the fault-injection counterpart of Resource: where
// Resource models contention, Outage models absence.
//
// Like every sim primitive it is driven from process context on a single
// kernel, so no locking is needed and replays are deterministic.
type Outage struct {
	until []Time
}

// NewOutage returns an outage tracker for n stations, all available.
func NewOutage(n int) *Outage { return &Outage{until: make([]Time, n)} }

// Fail marks station i down from now for the given duration. Overlapping
// failures extend the window to the latest recovery instant.
func (o *Outage) Fail(i int, now, duration Time) {
	if end := now + duration; end > o.until[i] {
		o.until[i] = end
	}
}

// Down reports whether station i is unavailable at time t.
func (o *Outage) Down(i int, t Time) bool { return t < o.until[i] }

// ClearsAt returns the earliest instant at or after t when station i is
// available: t itself if the station is up, otherwise its recovery time.
func (o *Outage) ClearsAt(i int, t Time) Time {
	if o.until[i] > t {
		return o.until[i]
	}
	return t
}
