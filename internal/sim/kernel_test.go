package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunEmptyKernel(t *testing.T) {
	if err := New().Run(); err != nil {
		t.Fatalf("empty kernel: %v", err)
	}
}

func TestSingleProcessRuns(t *testing.T) {
	k := New()
	ran := false
	k.Spawn("p", func(p *Proc) { ran = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("process did not run")
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New()
	var at Time
	k.Spawn("p", func(p *Proc) {
		p.Sleep(2.5)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 2.5 {
		t.Fatalf("woke at %v, want 2.5", at)
	}
	if k.Now() != 2.5 {
		t.Fatalf("kernel time %v, want 2.5", k.Now())
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(0)
		order = append(order, "a")
	})
	k.Spawn("b", func(p *Proc) { order = append(order, "b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "ba" {
		t.Fatalf("order %q, want ba (sleep 0 must yield)", got)
	}
}

func TestTimersFireInOrderWithStableTies(t *testing.T) {
	k := New()
	var order []int
	spawnAt := func(id int, at Time) {
		k.Spawn(fmt.Sprintf("p%d", id), func(p *Proc) {
			p.SleepUntil(at)
			order = append(order, id)
		})
	}
	spawnAt(0, 3)
	spawnAt(1, 1)
	spawnAt(2, 3) // tie with p0; p0 spawned (and slept) first
	spawnAt(3, 2)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() string {
		k := New()
		var log []string
		for i := 0; i < 5; i++ {
			i := i
			k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(i+1) * 0.1)
					log = append(log, fmt.Sprintf("%d.%d", i, j))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := New()
	var childRan bool
	k.Spawn("parent", func(p *Proc) {
		p.Spawn("child", func(c *Proc) {
			c.Sleep(1)
			childRan = true
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child did not run")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	ev := NewEvent("never")
	k.Spawn("waiter", func(p *Proc) { ev.Wait(p) })
	err := k.Run()
	dl, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || !strings.Contains(dl.Blocked[0], "never") {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
}

func TestPanicPropagates(t *testing.T) {
	k := New()
	k.Spawn("boom", func(p *Proc) { panic("kaboom") })
	k.Spawn("bystander", func(p *Proc) { p.Sleep(100) })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic message", err)
	}
}

func TestEventCountingSemantics(t *testing.T) {
	k := New()
	ev := NewEvent("e")
	var got []Time
	k.Spawn("signaler", func(p *Proc) {
		ev.Signal() // pre-signal: must not be lost
		ev.Signal()
		p.Sleep(5)
		ev.Signal()
	})
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < 3; i++ {
			ev.Wait(p)
			got = append(got, p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 0, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wait times %v, want %v", got, want)
		}
	}
	if ev.Count() != 0 {
		t.Fatalf("residual count %d", ev.Count())
	}
}

func TestEventFIFOWakeOrder(t *testing.T) {
	k := New()
	ev := NewEvent("e")
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i) * 0.001) // enqueue in id order
			ev.Wait(p)
			order = append(order, i)
		})
	}
	k.Spawn("sig", func(p *Proc) {
		p.Sleep(1)
		for i := 0; i < 4; i++ {
			ev.Signal()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if order[i] != i {
			t.Fatalf("wake order %v, want FIFO", order)
		}
	}
}

func TestEventTryWait(t *testing.T) {
	ev := NewEvent("e")
	if ev.TryWait() {
		t.Fatal("TryWait on empty event succeeded")
	}
	ev.Signal()
	if !ev.TryWait() {
		t.Fatal("TryWait after signal failed")
	}
	if ev.TryWait() {
		t.Fatal("signal consumed twice")
	}
}

func TestResourceSerializesUse(t *testing.T) {
	k := New()
	cpu := NewResource("cpu", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("job%d", i), func(p *Proc) {
			cpu.Use(p, 2)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{2, 4, 6}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	k := New()
	r := NewResource("r", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("job%d", i), func(p *Proc) {
			r.Use(p, 3)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{3, 3, 6, 6}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
}

func TestResourceFIFOHeadOfLineBlocking(t *testing.T) {
	// A request for 2 units at the head must not be overtaken by a later
	// 1-unit request (strict FIFO admission, no starvation).
	k := New()
	r := NewResource("r", 2)
	var order []string
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10)
		r.Release(1)
	})
	k.Spawn("big", func(p *Proc) {
		p.Sleep(1)
		r.Acquire(p, 2)
		order = append(order, "big")
		r.Release(2)
	})
	k.Spawn("small", func(p *Proc) {
		p.Sleep(2)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "big" {
		t.Fatalf("order %v: small overtook big", order)
	}
}

func TestResourceReleaseAdmitsMultiple(t *testing.T) {
	k := New()
	r := NewResource("r", 4)
	var admitted []string
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 4)
		p.Sleep(1)
		r.Release(4)
	})
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Sleep(0.5)
			r.Acquire(p, 1)
			admitted = append(admitted, name)
			r.Release(1)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(admitted, "") != "abc" {
		t.Fatalf("admitted %v, want all three in FIFO order", admitted)
	}
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic from zero-capacity resource")
		}
	}()
	NewResource("r", 0)
}

func TestResourceOverAcquireFailsRun(t *testing.T) {
	k := New()
	r := NewResource("r", 1)
	k.Spawn("p", func(p *Proc) { r.Acquire(p, 2) })
	if err := k.Run(); err == nil || !strings.Contains(err.Error(), "acquire") {
		t.Fatalf("err = %v, want acquire panic surfaced", err)
	}
}

func TestResourceOverReleaseFailsRun(t *testing.T) {
	k := New()
	r := NewResource("r", 1)
	k.Spawn("p", func(p *Proc) { r.Release(1) })
	if err := k.Run(); err == nil || !strings.Contains(err.Error(), "released") {
		t.Fatalf("err = %v, want release panic surfaced", err)
	}
}

func TestChanRendezvous(t *testing.T) {
	k := New()
	c := NewChan[int]("c", 0)
	var got int
	var sendDone, recvAt Time
	k.Spawn("sender", func(p *Proc) {
		c.Send(p, 42)
		sendDone = p.Now()
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(3)
		got, _ = c.Recv(p)
		recvAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d", got)
	}
	if recvAt != 3 || sendDone > 3 {
		t.Fatalf("recvAt=%v sendDone=%v", recvAt, sendDone)
	}
}

func TestChanBufferedDecouples(t *testing.T) {
	k := New()
	c := NewChan[int]("c", 2)
	var sendTimes []Time
	k.Spawn("sender", func(p *Proc) {
		for i := 0; i < 3; i++ {
			c.Send(p, i)
			sendTimes = append(sendTimes, p.Now())
		}
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(5)
		for i := 0; i < 3; i++ {
			v, ok := c.Recv(p)
			if !ok || v != i {
				t.Errorf("recv %d: got %d ok=%v", i, v, ok)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sendTimes[0] != 0 || sendTimes[1] != 0 {
		t.Fatalf("buffered sends blocked: %v", sendTimes)
	}
	if sendTimes[2] != 5 {
		t.Fatalf("third send should block until recv at t=5: %v", sendTimes)
	}
}

func TestChanBlockedSenderFillsFreedSlot(t *testing.T) {
	k := New()
	c := NewChan[int]("c", 1)
	var got []int
	k.Spawn("sender", func(p *Proc) {
		for i := 0; i < 3; i++ {
			c.Send(p, i)
		}
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(1)
		for i := 0; i < 3; i++ {
			v, _ := c.Recv(p)
			got = append(got, v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order %v", got)
		}
	}
}

func TestChanCloseDrainsThenReportsClosed(t *testing.T) {
	k := New()
	c := NewChan[int]("c", 4)
	k.Spawn("sender", func(p *Proc) {
		c.Send(p, 7)
		c.Close()
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(1)
		v, ok := c.Recv(p)
		if !ok || v != 7 {
			t.Errorf("first recv: %d %v", v, ok)
		}
		if _, ok := c.Recv(p); ok {
			t.Error("recv on drained closed channel reported ok")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanCloseWakesParkedReceiver(t *testing.T) {
	k := New()
	c := NewChan[int]("c", 0)
	k.Spawn("receiver", func(p *Proc) {
		if _, ok := c.Recv(p); ok {
			t.Error("recv reported ok after close")
		}
	})
	k.Spawn("closer", func(p *Proc) {
		p.Sleep(1)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanTryRecv(t *testing.T) {
	k := New()
	c := NewChan[int]("c", 1)
	k.Spawn("p", func(p *Proc) {
		if _, ok := c.TryRecv(); ok {
			t.Error("TryRecv on empty channel succeeded")
		}
		c.Send(p, 9)
		v, ok := c.TryRecv()
		if !ok || v != 9 {
			t.Errorf("TryRecv: %d %v", v, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerHeapPropertyOrdering(t *testing.T) {
	// Property: popping the heap yields timers sorted by (at, seq).
	f := func(times []float64) bool {
		var h timerHeap
		for i, at := range times {
			if at < 0 {
				at = -at
			}
			h.push(timer{at: at, seq: uint64(i)})
		}
		prev := timer{at: -1}
		for h.Len() > 0 {
			cur := h.pop()
			if cur.at < prev.at || (cur.at == prev.at && cur.seq < prev.seq) {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcessesStress(t *testing.T) {
	k := New()
	rng := rand.New(rand.NewSource(1))
	total := 0
	const n = 500
	for i := 0; i < n; i++ {
		d := rng.Float64()
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Sleep(d)
			}
			total++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("completed %d of %d", total, n)
	}
}

func TestYieldRoundRobins(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
		p.Yield()
		order = append(order, "b2")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, " "); got != "a1 b1 a2 b2" {
		t.Fatalf("order %q", got)
	}
}

func TestChanCloseWithBlockedSendersPanics(t *testing.T) {
	k := New()
	c := NewChan[int]("c", 0)
	k.Spawn("sender", func(p *Proc) { c.Send(p, 1) })
	k.Spawn("closer", func(p *Proc) {
		p.Sleep(1)
		defer func() {
			if recover() == nil {
				t.Error("no panic closing with blocked sender")
			}
			// Unblock the sender so the kernel can finish.
			c.Recv(p)
		}()
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestParkReadyRoundTrip(t *testing.T) {
	k := New()
	var parked *Proc
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		parked = p
		p.Park("external")
		woke = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(3)
		k.Ready(parked)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke at %v, want 3", woke)
	}
}

func TestNamesAndAccessors(t *testing.T) {
	k := New()
	ev := NewEvent("e1")
	r := NewResource("r1", 2)
	c := NewChan[int]("c1", 1)
	if ev.Name() != "e1" || r.Name() != "r1" || c.Name() != "c1" {
		t.Fatal("names lost")
	}
	if r.Capacity() != 2 || r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatal("resource accessors wrong")
	}
	k.Spawn("p", func(p *Proc) {
		c.Send(p, 5)
		if c.Len() != 1 {
			t.Error("chan len wrong")
		}
		c.TryRecv()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
