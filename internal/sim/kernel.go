// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of cooperatively scheduled processes over a
// virtual clock. Exactly one process executes at any instant, and all
// scheduling queues are FIFO with stable tie-breaking, so a simulation is
// fully deterministic: the same program produces the same event ordering
// and the same virtual finish times on every run, independent of the host
// machine's core count or load.
//
// Processes are ordinary goroutines that hand control back to the kernel
// whenever they block on a primitive (Sleep, Event.Wait, Resource.Acquire,
// Chan.Send/Recv). The kernel advances virtual time only when no process
// is runnable, jumping directly to the next timed wakeup.
//
// The package is the substrate for the NavP runtime (internal/navp), the
// message-passing library (internal/mp), and the cluster machine model
// (internal/machine) used to reproduce the paper's performance tables.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Time is virtual time in seconds.
type Time = float64

// Kernel is a discrete-event simulation engine. Create one with New, add
// processes with Spawn, and execute with Run. A Kernel must not be reused
// after Run returns.
type Kernel struct {
	now     Time
	timers  timerHeap
	runq    []*Proc
	nextSeq uint64
	live    int // spawned processes that have not finished
	procs   []*Proc
	yielded chan struct{}
	failure error
	running bool

	metDispatched *metrics.Counter
	metHorizon    *metrics.Gauge
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	k := &Kernel{yielded: make(chan struct{})}
	k.SetMetrics(nil) // no-op sinks until SetMetrics is called for real
	return k
}

// Now reports the current virtual time. It may be called between Run
// invocations or from within a process via Proc.Now.
func (k *Kernel) Now() Time { return k.now }

// Spawn registers a new process executing fn. The process becomes runnable
// immediately (it is appended to the ready queue) but does not execute
// until the kernel schedules it. Spawn may be called before Run or from
// inside a running process; calling it from any other goroutine while Run
// is in progress is a data race and must not be done.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		seq:    k.nextSeq,
		resume: make(chan struct{}),
	}
	k.nextSeq++
	k.live++
	k.procs = append(k.procs, p)
	//lint:ignore simsafe the kernel itself multiplexes procs onto parked goroutines; exactly one is ever runnable, so virtual-time order stays deterministic
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if r == errKilled {
					// Kernel shut down while this process was parked;
					// exit silently without touching kernel state.
					return
				}
				k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
			p.state = procDone
			k.live--
			k.yielded <- struct{}{}
		}()
		if _, ok := <-p.resume; !ok {
			panic(errKilled)
		}
		fn(p)
	}()
	k.ready(p)
	return p
}

// Ready makes a process parked with Proc.Park runnable again. Calling it
// on a process that is not parked corrupts the scheduler; external
// primitives must pair every Ready with exactly one earlier Park.
func (k *Kernel) Ready(p *Proc) { k.ready(p) }

// ready appends p to the run queue.
func (k *Kernel) ready(p *Proc) {
	p.state = procReady
	p.blockedOn = ""
	k.runq = append(k.runq, p)
}

// DeadlockError is returned by Run when live processes remain but none is
// runnable and no timed wakeup is pending.
type DeadlockError struct {
	// Time is the virtual time at which the simulation stalled.
	Time Time
	// Blocked lists the stuck processes as "name (waiting on X)".
	Blocked []string
}

// Error formats the deadlock diagnosis.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.6fs: %d process(es) blocked: %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes the simulation until every spawned process has finished.
// It returns a *DeadlockError if processes remain blocked with no pending
// wakeups, or the panic value (wrapped) if a process panics. After Run
// returns, all remaining parked goroutines are reclaimed.
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	k.running = true
	defer func() {
		k.running = false
		k.shutdown()
	}()
	for k.failure == nil {
		if len(k.runq) == 0 {
			if k.timers.Len() == 0 {
				break
			}
			t := k.timers.peek().at
			if t < k.now {
				return fmt.Errorf("sim: timer in the past (%.9f < %.9f)", t, k.now)
			}
			k.now = t
			k.metHorizon.Set(int64(t * 1e6))
			for k.timers.Len() > 0 && k.timers.peek().at == t {
				k.ready(k.timers.pop().p)
			}
			continue
		}
		p := k.runq[0]
		k.runq = k.runq[1:]
		p.state = procRunning
		k.metDispatched.Inc()
		p.resume <- struct{}{}
		<-k.yielded
	}
	if k.failure != nil {
		return k.failure
	}
	if k.live > 0 {
		dl := &DeadlockError{Time: k.now}
		for _, p := range k.procs {
			if p.state == procBlocked {
				dl.Blocked = append(dl.Blocked, fmt.Sprintf("%s (waiting on %s)", p.name, p.blockedOn))
			}
		}
		sort.Strings(dl.Blocked)
		return dl
	}
	return nil
}

// shutdown reclaims goroutines of processes that are still parked.
func (k *Kernel) shutdown() {
	for _, p := range k.procs {
		if p.state != procDone {
			p.state = procDone
			close(p.resume)
		}
	}
}

// errKilled is panicked inside a parked process when the kernel shuts
// down, unwinding its goroutine.
var errKilled = new(int)
