package sim

import "testing"

func TestOutageWindows(t *testing.T) {
	o := NewOutage(2)
	if o.Down(0, 0) || o.ClearsAt(0, 3) != 3 {
		t.Fatal("fresh outage reports a station down")
	}
	o.Fail(0, 10, 5)
	if !o.Down(0, 10) || !o.Down(0, 14.9) {
		t.Fatal("station not down inside its window")
	}
	if o.Down(0, 15) {
		t.Fatal("station down at its recovery instant")
	}
	if got := o.ClearsAt(0, 12); got != 15 {
		t.Fatalf("ClearsAt inside window = %v, want 15", got)
	}
	if got := o.ClearsAt(0, 20); got != 20 {
		t.Fatalf("ClearsAt after window = %v, want 20", got)
	}
	if o.Down(1, 12) {
		t.Fatal("failure leaked to another station")
	}
	// Overlapping failures extend, never shorten.
	o.Fail(0, 12, 10)
	if got := o.ClearsAt(0, 12); got != 22 {
		t.Fatalf("extended ClearsAt = %v, want 22", got)
	}
	o.Fail(0, 13, 1)
	if got := o.ClearsAt(0, 13); got != 22 {
		t.Fatalf("shorter overlapping failure shortened the window to %v", got)
	}
}
