package sim

import (
	"fmt"
	"testing"
)

// BenchmarkProcessSwitch measures the coroutine handshake: two processes
// ping-ponging via yields.
func BenchmarkProcessSwitch(b *testing.B) {
	k := New()
	n := b.N
	for p := 0; p < 2; p++ {
		k.Spawn(fmt.Sprintf("p%d", p), func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerHeap measures timed wakeups through the event heap.
func BenchmarkTimerHeap(b *testing.B) {
	k := New()
	n := b.N
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventSignalWait measures the producer/consumer event path.
func BenchmarkEventSignalWait(b *testing.B) {
	k := New()
	ev := NewEvent("e")
	n := b.N
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < n; i++ {
			ev.Signal()
			p.Yield()
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < n; i++ {
			ev.Wait(p)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures FIFO admission with four
// contenders on one server.
func BenchmarkResourceContention(b *testing.B) {
	k := New()
	r := NewResource("cpu", 1)
	n := b.N
	for w := 0; w < 4; w++ {
		k.Spawn(fmt.Sprintf("w%d", w), func(p *Proc) {
			for i := 0; i < n/4; i++ {
				r.Use(p, 0.001)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanRendezvous measures unbuffered channel handoffs.
func BenchmarkChanRendezvous(b *testing.B) {
	k := New()
	c := NewChan[int]("c", 0)
	n := b.N
	k.Spawn("sender", func(p *Proc) {
		for i := 0; i < n; i++ {
			c.Send(p, i)
		}
	})
	k.Spawn("receiver", func(p *Proc) {
		for i := 0; i < n; i++ {
			c.Recv(p)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
