package sim

// Chan is a virtual-time channel carrying values of type T between
// processes. Semantics mirror Go channels: a zero-capacity channel is a
// rendezvous; a buffered channel decouples sender and receiver up to its
// capacity. Blocked senders and receivers are released in FIFO order.
//
// Chan carries no time model of its own; transports that model latency or
// bandwidth charge those costs around Send/Recv (see internal/machine).
type Chan[T any] struct {
	name      string
	capacity  int
	buf       []T
	senders   []chanSender[T]
	receivers []chanReceiver[T]
	closed    bool
}

type chanSender[T any] struct {
	p *Proc
	v T
}

type chanReceiver[T any] struct {
	p    *Proc
	slot *T
	ok   *bool
}

// NewChan returns a channel with the given buffer capacity (0 for a
// rendezvous channel).
func NewChan[T any](name string, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan[T]{name: name, capacity: capacity}
}

// Name returns the channel's diagnostic name.
func (c *Chan[T]) Name() string { return c.name }

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send delivers v, blocking the calling process until a receiver or buffer
// slot is available. Send on a closed channel panics.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.closed {
		panic("sim: send on closed channel " + c.name)
	}
	if len(c.receivers) > 0 {
		r := c.receivers[0]
		c.receivers = c.receivers[1:]
		*r.slot = v
		*r.ok = true
		r.p.k.ready(r.p)
		return
	}
	if len(c.buf) < c.capacity {
		c.buf = append(c.buf, v)
		return
	}
	c.senders = append(c.senders, chanSender[T]{p: p, v: v})
	p.park("send " + c.name)
}

// Recv receives a value, blocking until one is available. ok is false only
// when the channel is closed and drained, as with Go channels.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		// A parked sender can now occupy the freed buffer slot.
		if len(c.senders) > 0 {
			s := c.senders[0]
			c.senders = c.senders[1:]
			c.buf = append(c.buf, s.v)
			s.p.k.ready(s.p)
		}
		return v, true
	}
	if len(c.senders) > 0 {
		s := c.senders[0]
		c.senders = c.senders[1:]
		s.p.k.ready(s.p)
		return s.v, true
	}
	if c.closed {
		return v, false
	}
	c.receivers = append(c.receivers, chanReceiver[T]{p: p, slot: &v, ok: &ok})
	p.park("recv " + c.name)
	return v, ok
}

// TryRecv receives a value without blocking, reporting whether one was
// available.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		if len(c.senders) > 0 {
			s := c.senders[0]
			c.senders = c.senders[1:]
			c.buf = append(c.buf, s.v)
			s.p.k.ready(s.p)
		}
		return v, true
	}
	if len(c.senders) > 0 {
		s := c.senders[0]
		c.senders = c.senders[1:]
		s.p.k.ready(s.p)
		return s.v, true
	}
	return v, false
}

// Close marks the channel closed. Pending and future receivers drain the
// buffer and then observe ok == false. Closing with parked senders, or
// closing twice, panics.
func (c *Chan[T]) Close() {
	if c.closed {
		panic("sim: close of closed channel " + c.name)
	}
	if len(c.senders) > 0 {
		panic("sim: close of channel " + c.name + " with blocked senders")
	}
	c.closed = true
	for _, r := range c.receivers {
		*r.ok = false
		r.p.k.ready(r.p)
	}
	c.receivers = nil
}
