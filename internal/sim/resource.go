package sim

import "fmt"

// Resource models a server with finite capacity — a CPU, a NIC, a disk —
// that processes acquire for a span of virtual time. Admission is strict
// FIFO: a large request at the head of the queue blocks smaller requests
// behind it, which prevents starvation and keeps scheduling deterministic.
type Resource struct {
	name     string
	capacity int
	inUse    int
	waiters  []resWaiter
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity (units are
// whatever the caller chooses: cores, concurrent DMA engines, ...).
// Capacity must be positive.
func NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q: capacity %d must be positive", name, capacity))
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire obtains n units, blocking the calling process in FIFO order
// until they are available. n must be between 1 and the capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: acquire %d of capacity %d", r.name, n, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	p.park("resource " + r.name)
}

// Release returns n units and admits queued waiters (in FIFO order) whose
// requests now fit.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic(fmt.Sprintf("sim: resource %q: released more than acquired", r.name))
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.inUse += w.n
		r.waiters = r.waiters[1:]
		w.p.k.ready(w.p)
	}
}

// Use acquires one unit, holds it for d seconds of virtual time, and
// releases it. It is the common pattern for charging service time: a CPU
// burst, a NIC serialization delay, a disk transfer.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p, 1)
	p.Sleep(d)
	r.Release(1)
}
