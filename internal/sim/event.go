package sim

// Event is a named counting event, matching the semantics of MESSENGERS
// signalEvent()/waitEvent(): Signal increments a counter (or wakes the
// oldest waiter), Wait consumes one signal, blocking until one is
// available. Signals are never lost: signaling before anyone waits is
// permitted and the count accumulates.
//
// Waiters are released in FIFO order, so the simulation stays
// deterministic.
type Event struct {
	name    string
	count   int
	waiters []*Proc
}

// NewEvent returns a counting event with an initial count of zero. The
// name is used only in deadlock diagnostics.
func NewEvent(name string) *Event { return &Event{name: name} }

// Name returns the event's diagnostic name.
func (e *Event) Name() string { return e.name }

// Count returns the number of pending (unconsumed) signals.
func (e *Event) Count() int { return e.count }

// Signal posts one occurrence of the event. If a process is waiting, the
// oldest waiter is made runnable and consumes the signal; otherwise the
// pending count is incremented. Signal never blocks and may be called from
// any process on the same kernel.
func (e *Event) Signal() {
	if len(e.waiters) > 0 {
		p := e.waiters[0]
		e.waiters = e.waiters[1:]
		p.k.ready(p)
		return
	}
	e.count++
}

// Wait consumes one pending signal, blocking the calling process until a
// signal is available.
func (e *Event) Wait(p *Proc) {
	if e.count > 0 {
		e.count--
		return
	}
	e.waiters = append(e.waiters, p)
	p.park("event " + e.name)
}

// TryWait consumes a pending signal if one is available and reports
// whether it did. It never blocks.
func (e *Event) TryWait() bool {
	if e.count > 0 {
		e.count--
		return true
	}
	return false
}
