package sim

import "fmt"

type procState uint8

const (
	procReady procState = iota
	procRunning
	procBlocked
	procDone
)

// Proc is a simulated process: a goroutine scheduled cooperatively by a
// Kernel. All Proc methods must be called from the process's own goroutine
// (i.e., from within the function passed to Spawn).
type Proc struct {
	k         *Kernel
	name      string
	seq       uint64
	resume    chan struct{}
	state     procState
	blockedOn string
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel scheduling this process.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// park blocks the calling process until another process (or a timer)
// readies it. The caller must have registered itself with a waker (timer
// heap, event queue, resource queue, ...) before parking.
func (p *Proc) park(reason string) {
	p.state = procBlocked
	p.blockedOn = reason
	p.k.yielded <- struct{}{}
	if _, ok := <-p.resume; !ok {
		panic(errKilled)
	}
}

// Sleep advances the process's local view of time by d seconds of virtual
// time. Other runnable processes execute in the interim. Sleep with d <= 0
// is equivalent to Yield.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		p.Yield()
		return
	}
	p.SleepUntil(p.k.now + d)
}

// SleepUntil blocks the process until virtual time t. If t is not after
// the current time it is equivalent to Yield.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.k.now {
		p.Yield()
		return
	}
	p.k.timers.push(timer{at: t, seq: p.k.nextSeq, p: p})
	p.k.nextSeq++
	p.park(fmt.Sprintf("timer@%.6f", t))
}

// Yield moves the process to the back of the ready queue, letting every
// other currently runnable process execute first. Virtual time does not
// advance.
func (p *Proc) Yield() {
	p.k.ready(p)
	p.park("yield")
	// ready() reset state/blockedOn; park overwrote them after the fact is
	// harmless because the scheduler resumes us only via the run queue.
}

// Spawn creates a child process on the same kernel. Injection is local in
// the MESSENGERS sense: the child starts on the same kernel and becomes
// runnable immediately.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc {
	return p.k.Spawn(name, fn)
}

// Park blocks the calling process until another process passes it to
// Kernel.Ready. It is the building block for synchronization primitives
// implemented outside this package (e.g. message matching in internal/mp).
// The reason string appears in deadlock diagnostics.
func (p *Proc) Park(reason string) { p.park(reason) }
