package mp

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// simBackend executes ranks as kernel processes and charges transfer and
// compute costs against the cluster model. Message matching follows MPI:
// per-receiver queues of posted receives and of senders parked awaiting a
// match (the rendezvous "unexpected" queue), matched in FIFO order.
type simBackend struct {
	kernel  *sim.Kernel
	cluster *machine.Cluster
	boxes   []mailbox // one per rank
}

type mailbox struct {
	posted     []*Request
	unexpected []*parkedSend
}

type parkedSend struct {
	src, tag int
	value    any
	bytes    int64
	proc     *sim.Proc
	req      *Request // filled in when matched
}

// NewSimWorld builds an n-rank world on a fresh simulation kernel with
// the given hardware model.
func NewSimWorld(hw machine.Config, n int) *World {
	k := sim.New()
	b := &simBackend{kernel: k, cluster: machine.NewCluster(k, hw, n), boxes: make([]mailbox, n)}
	return &World{size: n, backend: b}
}

// Cluster returns the machine model beneath a simulation-backed world, or
// nil for a real-backed world.
func (w *World) Cluster() *machine.Cluster {
	if b, ok := w.backend.(*simBackend); ok {
		return b.cluster
	}
	return nil
}

// VirtualTime returns the kernel time of a simulation-backed world (after
// Run, the program's finish time). It panics on a real-backed world.
func (w *World) VirtualTime() sim.Time {
	b, ok := w.backend.(*simBackend)
	if !ok {
		panic("mp: VirtualTime on a real-backed world")
	}
	return b.kernel.Now()
}

func (b *simBackend) run(w *World, program func(*Rank)) error {
	for id := 0; id < w.size; id++ {
		r := &Rank{id: id, world: w}
		b.kernel.Spawn(fmt.Sprintf("rank%d", id), func(p *sim.Proc) {
			r.proc = p
			program(r)
		})
	}
	return b.kernel.Run()
}

func matches(reqSrc, reqTag, src, tag int) bool {
	return (reqSrc == AnySource || reqSrc == src) && reqTag == tag
}

// transfer charges the wire costs of a matched message and completes req.
// It runs in the sender's process.
func (b *simBackend) transfer(sender *sim.Proc, src, dst int, value any, bytes int64, req *Request) {
	readyAt := b.cluster.SendCost(sender, src, dst, bytes)
	req.value = value
	req.bytes = bytes
	req.readyAt = readyAt
	req.arrived = true
	req.ev.Signal()
}

func (b *simBackend) send(r *Rank, dst, tag int, value any, bytes int64) {
	box := &b.boxes[dst]
	for i, req := range box.posted {
		if matches(req.src, req.tag, r.id, tag) {
			box.posted = append(box.posted[:i], box.posted[i+1:]...)
			b.transfer(r.proc, r.id, dst, value, bytes, req)
			return
		}
	}
	// No matching receive yet: rendezvous. Park until Irecv matches us,
	// then charge the transfer from this (the sender's) process.
	ps := &parkedSend{src: r.id, tag: tag, value: value, bytes: bytes, proc: r.proc}
	box.unexpected = append(box.unexpected, ps)
	r.proc.Park(fmt.Sprintf("mp send to %d tag %d", dst, tag))
	b.transfer(r.proc, r.id, dst, value, bytes, ps.req)
}

func (b *simBackend) isend(r *Rank, dst, tag int, value any, bytes int64) *Request {
	req := &Request{src: r.id, tag: tag, isSend: true,
		ev: sim.NewEvent(fmt.Sprintf("isend@%d tag %d", r.id, tag))}
	// A helper process performs the (possibly rendezvous-blocked) send on
	// the caller's behalf, charging the same NIC costs; Wait joins it.
	proxy := &Rank{id: r.id, world: r.world}
	r.proc.Spawn(fmt.Sprintf("rank%d.isend", r.id), func(p *sim.Proc) {
		proxy.proc = p
		b.send(proxy, dst, tag, value, bytes)
		req.arrived = true
		req.ev.Signal()
	})
	return req
}

func (b *simBackend) irecv(r *Rank, src, tag int) *Request {
	req := &Request{src: src, tag: tag, ev: sim.NewEvent(fmt.Sprintf("recv@%d tag %d", r.id, tag))}
	box := &b.boxes[r.id]
	for i, ps := range box.unexpected {
		if matches(src, tag, ps.src, ps.tag) {
			box.unexpected = append(box.unexpected[:i], box.unexpected[i+1:]...)
			ps.req = req
			r.proc.Kernel().Ready(ps.proc)
			return req
		}
	}
	box.posted = append(box.posted, req)
	return req
}

func (b *simBackend) wait(r *Rank, req *Request) any {
	req.ev.Wait(r.proc)
	if req.isSend {
		return nil
	}
	b.cluster.RecvCost(r.proc, r.id, req.readyAt, false)
	return req.value
}

func (b *simBackend) barrier(r *Rank) {
	// Dissemination barrier over zero-byte messages: log2(n) rounds, each
	// rank sends to (id+2^k) mod n and receives from (id−2^k) mod n.
	n := r.world.size
	for k := 1; k < n; k <<= 1 {
		to := (r.id + k) % n
		from := (r.id - k + n) % n
		req := r.Irecv(from, barrierTag-k)
		r.Send(to, barrierTag-k, nil, 0)
		r.Wait(req)
	}
}

// barrierTag is a tag space reserved for Barrier's internal messages;
// user tags must be non-negative.
const barrierTag = -1000

func (b *simBackend) compute(r *Rank, flops float64, fn func()) {
	b.cluster.PEs[r.id].Compute(r.proc, flops, fn)
}

func (b *simBackend) now(r *Rank) sim.Time { return r.proc.Now() }
