// Package mp is a message-passing library in the style of MPI, providing
// the subset the paper's Gentleman's Algorithm implementation uses
// (§4): blocking Send, non-blocking Irecv, Wait, plus Barrier and Bcast
// for the ScaLAPACK stand-in. Programs are SPMD: World.Run launches one
// process per rank executing the same function.
//
// Send is synchronous (rendezvous protocol, as LAM/MPI uses for the
// paper's megabyte-scale blocks): it blocks until the destination has
// posted a matching receive and the transfer completes. Irecv pre-posts a
// receive and returns immediately; Wait blocks until the message has
// arrived. This reproduces the deadlock structure the paper works around
// with "non-blocking receives ... in conjunction with blocking sends".
//
// Like internal/navp, the package has two backends: a deterministic
// virtual-time backend on the cluster model (NewSimWorld) used for the
// performance tables, and a real-goroutine backend (NewRealWorld) used to
// validate the same programs under genuine concurrency.
package mp

import (
	"fmt"

	"repro/internal/sim"
)

// AnySource matches a message from any rank in Irecv.
const AnySource = -1

// World is a communicator spanning n ranks. Create with NewSimWorld or
// NewRealWorld, then call Run.
type World struct {
	size    int
	backend backend
}

type backend interface {
	run(w *World, program func(*Rank)) error
	send(r *Rank, dst, tag int, value any, bytes int64)
	isend(r *Rank, dst, tag int, value any, bytes int64) *Request
	irecv(r *Rank, src, tag int) *Request
	wait(r *Rank, req *Request) any
	barrier(r *Rank)
	compute(r *Rank, flops float64, fn func())
	now(r *Rank) sim.Time
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes program on every rank concurrently and returns when all
// ranks finish. On the sim backend a communication deadlock is reported
// as a *sim.DeadlockError.
func (w *World) Run(program func(*Rank)) error {
	return w.backend.run(w, program)
}

// Rank is one SPMD process. All methods must be called from the rank's
// own execution context.
type Rank struct {
	id    int
	world *World

	proc *sim.Proc // sim backend only
}

// ID returns this rank's id, 0..Size-1.
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.world.size }

// Send transmits value with the given payload size to rank dst,
// blocking until dst posts a matching receive and the transfer completes
// (rendezvous semantics). Sending to oneself without a concurrently
// posted receive deadlocks, as in MPI.
func (r *Rank) Send(dst, tag int, value any, bytes int64) {
	if dst < 0 || dst >= r.world.size {
		panic(fmt.Sprintf("mp: rank %d sends to invalid rank %d", r.id, dst))
	}
	r.world.backend.send(r, dst, tag, value, bytes)
}

// Isend starts a non-blocking send to rank dst and returns a request.
// The transfer proceeds concurrently with the caller (as with a DMA-
// driven MPI_Isend); Wait blocks until it has fully completed, i.e.
// until the destination matched the message and the payload crossed the
// wire.
func (r *Rank) Isend(dst, tag int, value any, bytes int64) *Request {
	if dst < 0 || dst >= r.world.size {
		panic(fmt.Sprintf("mp: rank %d isends to invalid rank %d", r.id, dst))
	}
	return r.world.backend.isend(r, dst, tag, value, bytes)
}

// Irecv posts a non-blocking receive for a message from src (or
// AnySource) with the given tag and returns a request to pass to Wait.
func (r *Rank) Irecv(src, tag int) *Request {
	if src != AnySource && (src < 0 || src >= r.world.size) {
		panic(fmt.Sprintf("mp: rank %d receives from invalid rank %d", r.id, src))
	}
	return r.world.backend.irecv(r, src, tag)
}

// Wait blocks until the request's message has fully arrived and returns
// its value. Each request may be waited on once.
func (r *Rank) Wait(req *Request) any {
	if req.waited {
		panic(fmt.Sprintf("mp: rank %d waits twice on request (src=%d tag=%d)", r.id, req.src, req.tag))
	}
	req.waited = true
	return r.world.backend.wait(r, req)
}

// Recv is the blocking convenience: Irecv immediately followed by Wait.
func (r *Rank) Recv(src, tag int) any {
	return r.Wait(r.Irecv(src, tag))
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() {
	r.world.backend.barrier(r)
}

// Bcast distributes root's value to every rank along a binomial tree and
// returns it; value is ignored on non-root ranks. bytes is the payload
// size charged per tree edge.
func (r *Rank) Bcast(root, tag int, value any, bytes int64) any {
	size := r.world.size
	if size == 1 {
		return value
	}
	// Rotate so the root is virtual rank 0. In the binomial tree, virtual
	// rank v's parent is v with its lowest set bit cleared, and its
	// children are v+m for each power of two m below that bit.
	vrank := (r.id - root + size) % size
	top := 1
	for top < size {
		top <<= 1
	}
	childMask := top >> 1
	if vrank != 0 {
		lsb := vrank & -vrank
		parent := (vrank - lsb + root) % size
		value = r.Recv(parent, tag)
		childMask = lsb >> 1
	}
	for m := childMask; m >= 1; m >>= 1 {
		if child := vrank + m; child < size {
			r.Send((child+root)%size, tag, value, bytes)
		}
	}
	return value
}

// Compute performs fn, charging flops of CPU work on this rank's PE (one
// CPU per PE). fn may be nil when only the cost matters.
func (r *Rank) Compute(flops float64, fn func()) {
	r.world.backend.compute(r, flops, fn)
}

// Now returns the current time: virtual seconds on the sim backend,
// seconds since Run on the real backend.
func (r *Rank) Now() sim.Time { return r.world.backend.now(r) }

// Request is a pending non-blocking operation (an Irecv or an Isend).
type Request struct {
	src, tag int // as posted; src may be AnySource
	isSend   bool
	value    any
	bytes    int64
	arrived  bool
	readyAt  sim.Time
	waited   bool

	ev   *sim.Event    // sim backend
	done chan struct{} // real backend
}

// Cart2D maps ranks onto a PR×PC process grid in row-major order and
// provides the neighbor arithmetic of Gentleman's Algorithm (toroidal
// shifts west/north).
type Cart2D struct {
	PR, PC int
}

// NewCart2D validates and returns a PR×PC grid.
func NewCart2D(pr, pc int) Cart2D {
	if pr <= 0 || pc <= 0 {
		panic(fmt.Sprintf("mp: invalid grid %d×%d", pr, pc))
	}
	return Cart2D{PR: pr, PC: pc}
}

// Size returns PR·PC.
func (c Cart2D) Size() int { return c.PR * c.PC }

// Coords returns the (row, col) of rank id.
func (c Cart2D) Coords(id int) (row, col int) { return id / c.PC, id % c.PC }

// RankOf returns the rank at (row, col), wrapping toroidally.
func (c Cart2D) RankOf(row, col int) int {
	row = ((row % c.PR) + c.PR) % c.PR
	col = ((col % c.PC) + c.PC) % c.PC
	return row*c.PC + col
}

// West returns the rank one step west (column−1, wrapping).
func (c Cart2D) West(id int) int { r, cl := c.Coords(id); return c.RankOf(r, cl-1) }

// East returns the rank one step east (column+1, wrapping).
func (c Cart2D) East(id int) int { r, cl := c.Coords(id); return c.RankOf(r, cl+1) }

// North returns the rank one step north (row−1, wrapping).
func (c Cart2D) North(id int) int { r, cl := c.Coords(id); return c.RankOf(r-1, cl) }

// South returns the rank one step south (row+1, wrapping).
func (c Cart2D) South(id int) int { r, cl := c.Coords(id); return c.RankOf(r+1, cl) }
