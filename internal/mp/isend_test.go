package mp

import (
	"testing"

	"repro/internal/sim"
)

func TestIsendOverlapsWithCompute(t *testing.T) {
	// A rank that Isends a large message and computes while it is in
	// flight must finish in ~max(compute, transfer), not their sum.
	w := NewSimWorld(testHW(), 2)
	var senderDone sim.Time
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			req := r.Isend(1, 0, "bulk", 10e6) // 1 s on the wire
			r.Compute(100e6, nil)              // 1 s of work, concurrently
			r.Wait(req)
			senderDone = r.Now()
		case 1:
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderDone > 1.2 {
		t.Fatalf("sender finished at %v; transfer did not overlap compute", senderDone)
	}
	if senderDone < 0.99 {
		t.Fatalf("sender finished at %v; costs went missing", senderDone)
	}
}

func TestIsendValueDelivered(t *testing.T) {
	eachWorld(t, 2, func(t *testing.T, w *World) {
		var got any
		err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				req := r.Isend(1, 3, 42, 8)
				r.Wait(req)
			} else {
				got = r.Recv(0, 3)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Fatalf("got %v", got)
		}
	})
}

func TestIsendRendezvousCompletesAfterMatch(t *testing.T) {
	// Wait on an Isend must block until the receiver posts; the receiver
	// posting releases it.
	w := NewSimWorld(testHW(), 2)
	var waitDone sim.Time
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			req := r.Isend(1, 0, nil, 0)
			r.Wait(req)
			waitDone = r.Now()
		} else {
			r.Compute(500e6, nil) // receiver busy for 5 s first
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if waitDone < 4.9 {
		t.Fatalf("Isend completed at %v before the receiver matched", waitDone)
	}
}

func TestIsendManyConcurrentDistinctTags(t *testing.T) {
	eachWorld(t, 2, func(t *testing.T, w *World) {
		const n = 20
		got := make([]any, n)
		err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				var reqs []*Request
				for i := 0; i < n; i++ {
					reqs = append(reqs, r.Isend(1, i, i, 8))
				}
				for _, req := range reqs {
					r.Wait(req)
				}
			} else {
				// Receive in reverse tag order: completion must still
				// match values to tags.
				for i := n - 1; i >= 0; i-- {
					got[i] = r.Recv(0, i)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("tag %d carried %v", i, v)
			}
		}
	})
}

func TestIsendToInvalidRankPanics(t *testing.T) {
	w := NewSimWorld(testHW(), 2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Isend(7, 0, nil, 0)
		}
	})
	if err == nil {
		t.Fatal("invalid Isend accepted")
	}
}
