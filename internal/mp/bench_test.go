package mp

import "testing"

// BenchmarkPingPongSim measures matched send/recv pairs on the simulated
// backend.
func BenchmarkPingPongSim(b *testing.B) {
	w := NewSimWorld(testHW(), 2)
	n := b.N
	b.ResetTimer()
	err := w.Run(func(r *Rank) {
		for i := 0; i < n; i++ {
			if r.ID() == 0 {
				r.Send(1, 0, nil, 64)
				r.Recv(1, 1)
			} else {
				r.Recv(0, 0)
				r.Send(0, 1, nil, 64)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPingPongReal measures the goroutine backend's matching engine.
func BenchmarkPingPongReal(b *testing.B) {
	w := NewRealWorld(2)
	n := b.N
	b.ResetTimer()
	err := w.Run(func(r *Rank) {
		for i := 0; i < n; i++ {
			if r.ID() == 0 {
				r.Send(1, 0, nil, 64)
				r.Recv(1, 1)
			} else {
				r.Recv(0, 0)
				r.Send(0, 1, nil, 64)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier8 measures the dissemination barrier on 8 ranks.
func BenchmarkBarrier8(b *testing.B) {
	w := NewSimWorld(testHW(), 8)
	n := b.N
	b.ResetTimer()
	err := w.Run(func(r *Rank) {
		for i := 0; i < n; i++ {
			r.Barrier()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBcast8 measures the binomial broadcast on 8 ranks.
func BenchmarkBcast8(b *testing.B) {
	w := NewSimWorld(testHW(), 8)
	n := b.N
	b.ResetTimer()
	err := w.Run(func(r *Rank) {
		for i := 0; i < n; i++ {
			r.Bcast(0, i, "payload", 256)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
