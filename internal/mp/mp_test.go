package mp

import (
	"fmt"

	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func testHW() machine.Config {
	return machine.Config{
		CPURate:       100e6,
		NICBandwidth:  10e6,
		SwitchLatency: 1e-3,
		MemoryBytes:   1 << 30,
		PageInRate:    1e6,
		ElemBytes:     8,
	}
}

func eachWorld(t *testing.T, n int, f func(t *testing.T, w *World)) {
	t.Helper()
	t.Run("sim", func(t *testing.T) { f(t, NewSimWorld(testHW(), n)) })
	t.Run("real", func(t *testing.T) { f(t, NewRealWorld(n)) })
}

func TestPingPong(t *testing.T) {
	eachWorld(t, 2, func(t *testing.T, w *World) {
		var got any
		err := w.Run(func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(1, 7, "ping", 4)
				got = r.Recv(1, 8)
			case 1:
				msg := r.Recv(0, 7)
				r.Send(0, 8, msg.(string)+"/pong", 9)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != "ping/pong" {
			t.Fatalf("got %v", got)
		}
	})
}

func TestIrecvPrePostPreventsDeadlock(t *testing.T) {
	// Every rank sends east and receives from west simultaneously — the
	// paper's shift exchange. With rendezvous sends this deadlocks unless
	// receives are pre-posted, which is exactly why Gentleman's MPI code
	// uses MPI_Irecv.
	eachWorld(t, 4, func(t *testing.T, w *World) {
		var mu sync.Mutex
		sum := 0
		err := w.Run(func(r *Rank) {
			east := (r.ID() + 1) % r.Size()
			west := (r.ID() - 1 + r.Size()) % r.Size()
			req := r.Irecv(west, 0)
			r.Send(east, 0, r.ID(), 8)
			v := r.Wait(req).(int)
			mu.Lock()
			sum += v
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum != 0+1+2+3 {
			t.Fatalf("sum = %d", sum)
		}
	})
}

func TestBlockingSendsAloneDeadlock(t *testing.T) {
	// The same exchange with blocking receives only: all ranks park in
	// Send and the sim kernel reports the deadlock.
	w := NewSimWorld(testHW(), 3)
	err := w.Run(func(r *Rank) {
		east := (r.ID() + 1) % r.Size()
		west := (r.ID() - 1 + r.Size()) % r.Size()
		r.Send(east, 0, nil, 8)
		r.Recv(west, 0)
	})
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestMessageOrderBetweenPairs(t *testing.T) {
	eachWorld(t, 2, func(t *testing.T, w *World) {
		var got []int
		err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				for i := 0; i < 5; i++ {
					r.Send(1, 3, i, 8)
				}
			} else {
				for i := 0; i < 5; i++ {
					got = append(got, r.Recv(0, 3).(int))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("messages reordered: %v", got)
			}
		}
	})
}

func TestTagsSelectMessages(t *testing.T) {
	eachWorld(t, 2, func(t *testing.T, w *World) {
		var a, b any
		err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				reqB := r.Irecv(1, 2)
				reqA := r.Irecv(1, 1)
				a, b = r.Wait(reqA), r.Wait(reqB)
			} else {
				r.Send(0, 1, "tag1", 4)
				r.Send(0, 2, "tag2", 4)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if a != "tag1" || b != "tag2" {
			t.Fatalf("a=%v b=%v", a, b)
		}
	})
}

func TestAnySource(t *testing.T) {
	eachWorld(t, 3, func(t *testing.T, w *World) {
		seen := map[string]bool{}
		err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				for i := 0; i < 2; i++ {
					seen[r.Recv(AnySource, 0).(string)] = true
				}
			} else {
				r.Send(0, 0, fmt.Sprintf("from%d", r.ID()), 8)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !seen["from1"] || !seen["from2"] {
			t.Fatalf("seen = %v", seen)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	eachWorld(t, 5, func(t *testing.T, w *World) {
		var mu sync.Mutex
		before, after := 0, 0
		violated := false
		err := w.Run(func(r *Rank) {
			mu.Lock()
			before++
			mu.Unlock()
			r.Barrier()
			mu.Lock()
			if before != 5 {
				violated = true
			}
			after++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		if violated || after != 5 {
			t.Fatalf("barrier violated=%v after=%d", violated, after)
		}
	})
}

func TestBarrierReusable(t *testing.T) {
	eachWorld(t, 3, func(t *testing.T, w *World) {
		err := w.Run(func(r *Rank) {
			for i := 0; i < 4; i++ {
				r.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestBcastFromEveryRoot(t *testing.T) {
	for root := 0; root < 4; root++ {
		root := root
		eachWorld(t, 4, func(t *testing.T, w *World) {
			vals := make([]any, 4)
			err := w.Run(func(r *Rank) {
				var v any
				if r.ID() == root {
					v = "payload"
				}
				vals[r.ID()] = r.Bcast(root, 9, v, 100)
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range vals {
				if v != "payload" {
					t.Fatalf("root %d: rank %d got %v", root, i, v)
				}
			}
		})
	}
}

func TestSimTransferTimeCharged(t *testing.T) {
	w := NewSimWorld(testHW(), 2)
	var recvDone sim.Time
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, nil, 10e6) // 1 s at 10 MB/s
		} else {
			r.Recv(0, 0)
			recvDone = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvDone < 1.0 || recvDone > 1.1 {
		t.Fatalf("recv completed at %v, want ~1.001", recvDone)
	}
}

func TestSimComputeOverlapsAcrossRanks(t *testing.T) {
	w := NewSimWorld(testHW(), 3)
	var finish sim.Time
	err := w.Run(func(r *Rank) {
		r.Compute(100e6, nil) // 1 s each
		r.Barrier()
		if r.ID() == 0 {
			finish = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finish < 1.0 || finish > 1.2 {
		t.Fatalf("parallel compute finished at %v, want ~1 s (not 3 s)", finish)
	}
}

func TestWaitTwicePanics(t *testing.T) {
	w := NewSimWorld(testHW(), 2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			req := r.Irecv(1, 0)
			r.Wait(req)
			defer func() {
				if recover() == nil {
					t.Error("no panic on double Wait")
				}
			}()
			r.Wait(req)
		} else {
			r.Send(0, 0, nil, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRankPanics(t *testing.T) {
	w := NewSimWorld(testHW(), 2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(5, 0, nil, 0)
		}
	})
	if err == nil {
		t.Fatal("send to invalid rank did not fail the run")
	}
}

func TestCart2DGeometry(t *testing.T) {
	c := NewCart2D(3, 3)
	if c.Size() != 9 {
		t.Fatalf("size %d", c.Size())
	}
	if r, cl := c.Coords(5); r != 1 || cl != 2 {
		t.Fatalf("Coords(5) = (%d,%d)", r, cl)
	}
	if got := c.West(3); got != 5 { // (1,0) west -> (1,2)
		t.Fatalf("West(3) = %d, want 5", got)
	}
	if got := c.East(5); got != 3 { // (1,2) east -> (1,0)
		t.Fatalf("East(5) = %d, want 3", got)
	}
	if got := c.North(1); got != 7 { // (0,1) north -> (2,1)
		t.Fatalf("North(1) = %d, want 7", got)
	}
	if got := c.South(7); got != 1 {
		t.Fatalf("South(7) = %d, want 1", got)
	}
	if got := c.RankOf(-1, -1); got != 8 {
		t.Fatalf("RankOf(-1,-1) = %d, want 8", got)
	}
}

func TestCart2DRoundTrip(t *testing.T) {
	c := NewCart2D(2, 4)
	for id := 0; id < c.Size(); id++ {
		r, cl := c.Coords(id)
		if c.RankOf(r, cl) != id {
			t.Fatalf("round trip failed for %d", id)
		}
		if c.East(c.West(id)) != id || c.South(c.North(id)) != id {
			t.Fatalf("shift inverse failed for %d", id)
		}
	}
}

func TestSimDeterministicFinishTime(t *testing.T) {
	run := func() sim.Time {
		w := NewSimWorld(testHW(), 4)
		err := w.Run(func(r *Rank) {
			for step := 0; step < 3; step++ {
				east := (r.ID() + 1) % r.Size()
				west := (r.ID() - 1 + r.Size()) % r.Size()
				req := r.Irecv(west, step)
				r.Send(east, step, r.ID(), 1e6)
				r.Wait(req)
				r.Compute(50e6, nil)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.VirtualTime()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("finish time differs: %v vs %v", got, first)
		}
	}
}
