// This file is the real-concurrency backend: wall-clock time and bare
// goroutines are its whole point, not a reproducibility bug.
//
//navplint:exempt simsafe
package mp

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// realBackend executes each rank as a goroutine with the same matching
// semantics as the sim backend: rendezvous sends, pre-posted receives.
// It makes no timing promises and exists to validate program correctness
// under genuine concurrency.
type realBackend struct {
	mu      sync.Mutex
	boxes   []realMailbox
	cpus    []sync.Mutex
	started time.Time

	bar struct {
		count, gen int
		cond       *sync.Cond
	}
}

type realMailbox struct {
	posted     []*Request
	unexpected []*realParkedSend
}

type realParkedSend struct {
	src, tag int
	value    any
	bytes    int64
	matched  chan *Request
}

// NewRealWorld builds an n-rank world executed by real goroutines.
func NewRealWorld(n int) *World {
	b := &realBackend{boxes: make([]realMailbox, n), cpus: make([]sync.Mutex, n)}
	b.bar.cond = sync.NewCond(&b.mu)
	return &World{size: n, backend: b}
}

func (b *realBackend) run(w *World, program func(*Rank)) error {
	b.started = time.Now()
	var wg sync.WaitGroup
	for id := 0; id < w.size; id++ {
		r := &Rank{id: id, world: w}
		wg.Add(1)
		go func() {
			defer wg.Done()
			program(r)
		}()
	}
	wg.Wait()
	return nil
}

func (b *realBackend) send(r *Rank, dst, tag int, value any, bytes int64) {
	b.mu.Lock()
	box := &b.boxes[dst]
	for i, req := range box.posted {
		if matches(req.src, req.tag, r.id, tag) {
			box.posted = append(box.posted[:i], box.posted[i+1:]...)
			req.value = value
			req.bytes = bytes
			req.arrived = true
			done := req.done
			b.mu.Unlock()
			close(done)
			return
		}
	}
	ps := &realParkedSend{src: r.id, tag: tag, value: value, bytes: bytes, matched: make(chan *Request)}
	box.unexpected = append(box.unexpected, ps)
	b.mu.Unlock()
	req := <-ps.matched // rendezvous: block until a receive is posted
	b.mu.Lock()
	req.value = value
	req.bytes = bytes
	req.arrived = true
	done := req.done
	b.mu.Unlock()
	close(done)
}

func (b *realBackend) isend(r *Rank, dst, tag int, value any, bytes int64) *Request {
	req := &Request{src: r.id, tag: tag, isSend: true, done: make(chan struct{})}
	go func() {
		b.send(r, dst, tag, value, bytes)
		close(req.done)
	}()
	return req
}

func (b *realBackend) irecv(r *Rank, src, tag int) *Request {
	req := &Request{src: src, tag: tag, done: make(chan struct{})}
	b.mu.Lock()
	box := &b.boxes[r.id]
	for i, ps := range box.unexpected {
		if matches(src, tag, ps.src, ps.tag) {
			box.unexpected = append(box.unexpected[:i], box.unexpected[i+1:]...)
			b.mu.Unlock()
			ps.matched <- req
			return req
		}
	}
	box.posted = append(box.posted, req)
	b.mu.Unlock()
	return req
}

func (b *realBackend) wait(r *Rank, req *Request) any {
	<-req.done
	if req.isSend {
		return nil
	}
	b.mu.Lock()
	v := req.value
	b.mu.Unlock()
	return v
}

func (b *realBackend) barrier(r *Rank) {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.bar.gen
	b.bar.count++
	if b.bar.count == r.world.size {
		b.bar.count = 0
		b.bar.gen++
		b.bar.cond.Broadcast()
		return
	}
	for gen == b.bar.gen {
		b.bar.cond.Wait()
	}
}

func (b *realBackend) compute(r *Rank, flops float64, fn func()) {
	b.cpus[r.id].Lock()
	if fn != nil {
		fn()
	}
	b.cpus[r.id].Unlock()
}

func (b *realBackend) now(r *Rank) sim.Time { return time.Since(b.started).Seconds() }
