// Package analysis is a small stdlib-only static-analysis framework
// (go/ast + go/parser + go/types — no x/tools dependency) plus the
// navplint analyzers that prove NavP programs obey the model the plan
// transformations assume:
//
//   - hopcheck: a *navp.Node reference must not survive a Hop — node
//     data is only addressable from the node that holds it (the NavP
//     locality rule; DESIGN.md §9.1).
//   - gobsafe: every value that flows into the wire runtime's
//     gob-encoded agent state must round-trip losslessly — unexported
//     fields are silently dropped and chan/func fields fail at encode
//     time, both of which corrupt checkpoint replay (§9.2).
//   - simsafe: simulation-domain code must not consult wall clocks,
//     global randomness, or spawn bare goroutines — only virtual time
//     and seeded sources keep runs bit-reproducible (§9.3).
//   - planfootprint: an execution plan item's body must agree with the
//     Accesses footprint it declares, so core.Check's dependence
//     verification cannot be lied to (§9.4).
//
// The cmd/navplint CLI runs all four over the module; each analyzer has
// a `// want`-style golden suite under testdata/src.
//
// # Suppressing a finding
//
// A diagnostic can be silenced at three scopes:
//
//	//lint:ignore hopcheck <reason>      — this line or the next one
//	//navplint:exempt simsafe            — the whole file, one analyzer
//	//navplint:exempt all                — the whole file, all analyzers
//
// A reason is required on lint:ignore; an ignore comment naming no
// analyzer is itself reported (it would otherwise rot silently).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one navplint rule.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// suppression comments.
	Name string
	// Doc is a one-paragraph description of the rule and the model
	// invariant it encodes.
	Doc string
	// Run reports findings on one package through pass.Reportf.
	Run func(pass *Pass)
	// Filter, if non-nil, restricts the analyzer to packages whose
	// import path it accepts (e.g. simsafe applies only to the
	// simulation domain). Nil means every package.
	Filter func(pkgPath string) bool
}

// All returns fresh instances of every navplint analyzer, in stable
// order. Instances are fresh so callers may set Filter without
// affecting other users.
func All() []*Analyzer {
	return []*Analyzer{
		NewHopCheck(),
		NewGobSafe(),
		NewSimSafe(),
		NewPlanFootprint(),
	}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e in the package's type info, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by position, with suppressed and duplicate findings
// removed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		idx := newSuppressIndex(pkg)
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.Filter != nil && !a.Filter(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
		raw = append(raw, idx.malformed...)
		for _, d := range raw {
			if !idx.suppressed(d) {
				all = append(all, d)
			}
		}
	}
	seen := map[string]bool{}
	var out []Diagnostic
	for _, d := range all {
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// funcFor resolves the callee of a call expression to its *types.Func
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed variables.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // generic instantiation: NodeVar[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function pkgPath.name
// or a method name on a type of pkgPath.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name
}

// namedIn reports whether t (after pointer dereference) is the named
// type pkgPath.name.
func namedIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
