// Package analysis is a small stdlib-only static-analysis framework
// (go/ast + go/parser + go/types — no x/tools dependency) plus the
// navplint analyzers that prove NavP programs obey the model the plan
// transformations assume:
//
//   - hopcheck: a *navp.Node reference must not survive a Hop — node
//     data is only addressable from the node that holds it (the NavP
//     locality rule; DESIGN.md §9.1).
//   - gobsafe: every value that flows into the wire runtime's
//     gob-encoded agent state must round-trip losslessly — unexported
//     fields are silently dropped and chan/func fields fail at encode
//     time, both of which corrupt checkpoint replay (§9.2).
//   - simsafe: simulation-domain code must not consult wall clocks,
//     global randomness, or spawn bare goroutines — only virtual time
//     and seeded sources keep runs bit-reproducible (§9.3).
//   - planfootprint: an execution plan item's body must agree with the
//     Accesses footprint it declares, so core.Check's dependence
//     verification cannot be lied to (§9.4).
//   - asmsafe: assembly-backed functions (bodyless declarations) must
//     be unexported and referenced only from their declaring file, so
//     every call routes through the CPU feature-detect dispatcher and
//     the pure-Go fallback stays selectable (§15).
//
// Four more analyzers prove the serving layers' runtime invariants over
// the interprocedural fact layer (analysis/facts; DESIGN.md §14):
//
//   - syncorder: persist-before-acknowledge — no path in internal/wire
//     externalizes the effect of a durable mutation (conn write, hop
//     ack, msgOK) before the persister synced it.
//   - lockorder: the static lock graph across wire+sched is acyclic; no
//     mutex is held across a blocking call, re-acquired on a path, or
//     still held at a return without a deferred unlock.
//   - jobrelease: every minted job namespace (sched.namespace) reaches
//     ReleaseJob/ClearVarsPrefix on every exit path.
//   - metricsafe: registry instrument lookups are hoisted out of loops
//     when their name is loop-invariant, and nil-registry discard paths
//     never allocate.
//
// The cmd/navplint CLI runs all nine over the module (with the domain
// scoping in ApplyDomainFilters); each analyzer has a `// want`-style
// golden suite under testdata/src.
//
// # Suppressing a finding
//
// A diagnostic can be silenced at three scopes:
//
//	//lint:ignore hopcheck <reason>      — this line or the next one
//	//navplint:exempt simsafe            — the whole file, one analyzer
//	//navplint:exempt all                — the whole file, all analyzers
//
// A reason is required on lint:ignore; an ignore comment naming no
// analyzer is itself reported (it would otherwise rot silently).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/facts"
	"repro/internal/analysis/load"
)

// The loader lives in internal/analysis/load; the aliases keep the
// original harness API (analysis.NewLoader, analysis.Package) stable
// for cmd/navplint and the fixture tests.
type (
	// Package is one loaded, type-checked module package with its syntax.
	Package = load.Package
	// Loader loads and type-checks packages of the enclosing module.
	Loader = load.Loader
)

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) { return load.NewLoader(dir) }

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one navplint rule.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// suppression comments.
	Name string
	// Doc is a one-paragraph description of the rule and the model
	// invariant it encodes.
	Doc string
	// Run reports findings on one package through pass.Reportf.
	Run func(pass *Pass)
	// Filter, if non-nil, restricts the analyzer to packages whose
	// import path it accepts (e.g. simsafe applies only to the
	// simulation domain). Nil means every package.
	Filter func(pkgPath string) bool
}

// All returns fresh instances of every navplint analyzer, in stable
// order. Instances are fresh so callers may set Filter without
// affecting other users.
func All() []*Analyzer {
	return []*Analyzer{
		NewHopCheck(),
		NewGobSafe(),
		NewSimSafe(),
		NewPlanFootprint(),
		NewAsmSafe(),
		NewSyncOrder(),
		NewLockOrder(),
		NewJobRelease(),
		NewMetricSafe(),
	}
}

// ApplyDomainFilters restricts each analyzer to the domain its invariant
// lives in, given the module path. Used by cmd/navplint and the
// repo-clean test so the two cannot drift:
//
//   - simsafe: the simulation domain — internal packages minus the wire
//     and sched serving layers (which own real sockets, real clocks, and
//     real goroutines by design; DESIGN.md §9.3).
//   - syncorder: internal/wire, the only package with a persister.
//   - lockorder: internal/wire + internal/sched, the serving layers
//     whose lock graphs interlock.
//   - jobrelease: internal/sched, where namespaces are minted.
//
// Fixture packages (synthetic "fixture/..." paths) always pass, so the
// golden suites exercise filtered analyzers too.
func ApplyDomainFilters(analyzers []*Analyzer, modPath string) {
	fixture := func(pkgPath string) bool { return strings.HasPrefix(pkgPath, "fixture/") }
	wire := modPath + "/internal/wire"
	sched := modPath + "/internal/sched"
	for _, a := range analyzers {
		switch a.Name {
		case "simsafe":
			a.Filter = func(pkgPath string) bool {
				if fixture(pkgPath) {
					return true
				}
				if !strings.HasPrefix(pkgPath, modPath+"/internal/") {
					return false
				}
				return pkgPath != wire && pkgPath != sched
			}
		case "syncorder":
			a.Filter = func(pkgPath string) bool {
				return fixture(pkgPath) || pkgPath == wire
			}
		case "lockorder":
			a.Filter = func(pkgPath string) bool {
				return fixture(pkgPath) || pkgPath == wire || pkgPath == sched
			}
		case "jobrelease":
			a.Filter = func(pkgPath string) bool {
				return fixture(pkgPath) || pkgPath == sched
			}
		}
	}
}

// Pass carries one analyzer's view of one package, including the
// interprocedural facts computed over the whole loaded package set.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Facts    *facts.Set
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e in the package's type info, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by position, with suppressed and duplicate findings
// removed. Interprocedural facts are computed once over the whole
// package set, so summaries cross package boundaries when callers and
// callees are loaded together.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	fs := facts.Analyze(pkgs)
	var all []Diagnostic
	for _, pkg := range pkgs {
		idx := newSuppressIndex(pkg)
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.Filter != nil && !a.Filter(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Facts: fs, diags: &raw}
			a.Run(pass)
		}
		raw = append(raw, idx.malformed...)
		for _, d := range raw {
			if !idx.suppressed(d) {
				all = append(all, d)
			}
		}
	}
	seen := map[string]bool{}
	var out []Diagnostic
	for _, d := range all {
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// funcFor, isPkgFunc, and namedIn delegate to the facts layer's
// resolvers so the analyzers and the fact engine share one notion of
// "which function is this call".
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	return facts.Callee(info, call)
}

func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return facts.IsPkgFunc(f, pkgPath, name)
}

func namedIn(t types.Type, pkgPath, name string) bool {
	return facts.NamedIn(t, pkgPath, name)
}
