// Package simsafe exercises the simsafe analyzer: wall clocks, global
// randomness, and bare goroutines break bit-reproducibility.
package simsafe

import (
	"math/rand"
	"time"
)

func clocks() time.Time {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return time.Now()            // want `time.Now reads the wall clock`
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since reads the wall clock`
}

func draws() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle draws from the global math/rand source`
	return rand.Float64()              // want `rand.Float64 draws from the global math/rand source`
}

func spawns() {
	go func() {}() // want `bare go statement`
}
