package simsafe

import (
	"math/rand"
	"time"
)

// seeded is the true-negative fixture: an injected seeded source is the
// reproducible way to draw randomness.
func seeded(rng *rand.Rand) float64 {
	if rng == nil {
		rng = rand.New(rand.NewSource(42))
	}
	return rng.Float64()
}

// durations uses time for pure values only — parsing and arithmetic on
// durations never touch the wall clock.
func durations() time.Duration {
	d, _ := time.ParseDuration("80us")
	return d * 2
}

// suppressed exercises the escape hatch: a justified wall-clock read is
// silenced with lint:ignore.
func suppressed() time.Time {
	//lint:ignore simsafe fixture exercises the suppression path
	return time.Now()
}
