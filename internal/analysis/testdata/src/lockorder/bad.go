package lockorder

import (
	"net"
	"time"
)

// sleepHeld parks in wall-clock time while holding the box mutex.
func sleepHeld(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `held across an indefinite wait`
	b.mu.Unlock()
}

// sendHeld blocks on a channel send while holding.
func sendHeld(b *box, v int) {
	b.mu.Lock()
	b.ch <- v // want `held across an indefinite wait`
	b.mu.Unlock()
}

// recvHeld blocks on a channel receive while holding.
func recvHeld(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `held across an indefinite wait`
}

// dialHeld is the daemon.link bug class: a dial to one slow peer stalls
// every contender on the mutex.
func dialHeld(b *box, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	conn, err := net.Dial("tcp", addr) // want `held across an indefinite wait`
	if err == nil {
		b.conn = conn
	}
}

// writeHeld holds across conn I/O.
func writeHeld(b *box, frame []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.conn.Write(frame) // want `held across an indefinite wait`
}

// waitAround may block; its summary says so.
func waitAround(ch chan int) int { return <-ch }

// helperHeld blocks through a callee, not an intrinsic.
func helperHeld(b *box, ch chan int) {
	b.mu.Lock()
	waitAround(ch) // want `held across an indefinite wait`
	b.mu.Unlock()
}

// lockTwice re-acquires on the same path; Go mutexes are not reentrant.
func lockTwice(b *box) {
	b.mu.Lock()
	b.mu.Lock() // want `not reentrant`
	b.n++
	b.mu.Unlock()
	b.mu.Unlock()
}

// lockIt acquires the box mutex; its summary carries the acquisition.
func lockIt(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// lockViaHelper re-acquires through a callee's acquisition summary.
func lockViaHelper(b *box) {
	b.mu.Lock()
	lockIt(b) // want `not reentrant`
	b.mu.Unlock()
}

// exitHeld forgets the unlock on the early-return path.
func exitHeld(b *box, bad bool) {
	b.mu.Lock() // want `still held when some path returns`
	if bad {
		return
	}
	b.mu.Unlock()
}

// abOrder and baOrder take muA and muB in opposite orders: the classic
// two-goroutine deadlock, visible as a cycle in the static lock graph.
func abOrder() {
	muA.Lock()
	muB.Lock() // want `lock-order cycle`
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock() // want `lock-order cycle`
	muA.Unlock()
	muB.Unlock()
}
