package lockorder

// lockUnlock is plain discipline: acquire, touch, deferred release.
func lockUnlock(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// unlockBeforeBlocking releases before parking on the channel.
func unlockBeforeBlocking(b *box, v int) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.ch <- v
}

// condWait waits under the mutex the condition was built over —
// sync.Cond.Wait atomically releases it, so this is the idiom the
// scheduler's worker loop and the events table use, not a bug.
func condWait(b *box) {
	b.mu.Lock()
	for b.n == 0 {
		b.cond.Wait()
	}
	b.n--
	b.mu.Unlock()
}

// orderedOnce and orderedTwice take muC before muD everywhere, so the
// C→D edge never joins a cycle.
func orderedOnce() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func orderedTwice() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

// branchesRelease unlocks on every path even though the arms differ.
func branchesRelease(b *box, quick bool) int {
	b.mu.Lock()
	if quick {
		n := b.n
		b.mu.Unlock()
		return n
	}
	b.n++
	n := b.n
	b.mu.Unlock()
	return n
}

// suppressed documents an intentional hold-across-write: the serialized
// frame writer keeps concurrent senders' frames from interleaving, and
// the ignore directive names the analyzer and the reason.
func suppressed(b *box, frame []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore lockorder the mutex exists to serialize whole frames onto the shared conn; holding it across the write is the invariant.
	b.conn.Write(frame)
}
