// Package lockorder exercises the static lock-graph analyzer: blocking
// while holding, re-acquisition, paths that return still holding, and
// acquisition-order cycles.
package lockorder

import (
	"net"
	"sync"
)

// muC and muD are only ever taken C-before-D (good.go), so they stay
// off every cycle; muA and muB are taken in both orders (bad.go).
var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
)

// box is a miniature of the daemon: one mutex guarding a counter, a
// condition built over it, and a conn.
type box struct {
	mu   sync.Mutex
	cond *sync.Cond
	conn net.Conn
	ch   chan int
	n    int
}
