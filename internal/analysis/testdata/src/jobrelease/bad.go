package jobrelease

// leakOnError releases on success but forgets the error path.
func leakOnError(c *cluster, id uint64) error {
	ns := mint(id, 0) // want `not released on every exit path`
	if err := c.run(ns); err != nil {
		return err
	}
	c.ReleaseJob(ns)
	c.ClearVarsPrefix("job:")
	return nil
}

// neverReleased hands the namespace back raw; no path releases it.
func neverReleased(c *cluster, id uint64) uint64 {
	return mint(id, 1) // want `not released on every exit path`
}

// branchLeak releases on one arm only.
func branchLeak(c *cluster, id uint64, failed bool) {
	ns := mint(id, 2) // want `not released on every exit path`
	if failed {
		return
	}
	c.ReleaseJob(ns)
}
