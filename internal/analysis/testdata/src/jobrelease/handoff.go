package jobrelease

// handoffReaper transfers the release obligation to another owner —
// the shape of Scheduler.enqueueReap (cleanup hands an undrained
// namespace to the background reaper) and of a migration hand-off
// (the destination daemon owns the shipped checkpoint from the ack
// on). The obligation moves, it is not discharged here.
//
//navplint:fact handoff
func handoffReaper(ns uint64) {}

// transferOnTimeout mints, and on the slow path hands the namespace
// off instead of releasing — a transfer, not a leak.
func transferOnTimeout(c *cluster, id uint64, slow bool) {
	ns := mint(id, 3)
	if slow {
		handoffReaper(ns)
		return
	}
	c.ReleaseJob(ns)
	c.ClearVarsPrefix("job:")
}

// reapLater wraps the hand-off; the fact propagates through its
// summary the way a release does.
func reapLater(ns uint64) { handoffReaper(ns) }

// transferViaHelper hands off through the wrapper on every path.
func transferViaHelper(c *cluster, id uint64) {
	ns := mint(id, 4)
	reapLater(ns)
}

// dropRaw looks like a hand-off but carries no annotation, so calling
// it transfers nothing.
func dropRaw(ns uint64) {}

// dropOnTimeout has transferOnTimeout's shape with an unannotated
// sink — the slow path is still a leak.
func dropOnTimeout(c *cluster, id uint64, slow bool) {
	ns := mint(id, 5) // want `not released on every exit path`
	if slow {
		dropRaw(ns)
		return
	}
	c.ReleaseJob(ns)
	c.ClearVarsPrefix("job:")
}
