package jobrelease

// releaseAllPaths releases whether or not the attempt failed.
func releaseAllPaths(c *cluster, id uint64) error {
	ns := mint(id, 0)
	err := c.run(ns)
	c.ReleaseJob(ns)
	c.ClearVarsPrefix("job:")
	return err
}

// cleanup releases on behalf of its caller; its summary carries the
// release, like Scheduler.cleanup.
func cleanup(c *cluster, ns uint64) {
	c.ReleaseJob(ns)
	c.ClearVarsPrefix("job:")
}

// releaseViaHelper delegates the release to cleanup.
func releaseViaHelper(c *cluster, id uint64) error {
	ns := mint(id, 0)
	err := c.run(ns)
	cleanup(c, ns)
	return err
}

// attemptLoop mints one namespace per attempt and cleans each before
// the next (or before any return), like Scheduler.run's retry loop.
func attemptLoop(c *cluster, id uint64, retries int) error {
	var last error
	for a := 0; a <= retries; a++ {
		ns := mint(id, a)
		last = c.run(ns)
		cleanup(c, ns)
		if last == nil {
			return nil
		}
	}
	return last
}

// noMint injects under a namespace it was handed but never minted, so
// it carries no obligation — the Work.Run shape.
func noMint(c *cluster, ns uint64) error {
	return c.run(ns)
}
