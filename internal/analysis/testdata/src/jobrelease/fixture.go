// Package jobrelease exercises the namespace-leak analyzer over a
// miniature of the scheduler: a mint-annotated namespace allocator and
// a cluster with the two releasing methods.
package jobrelease

// mint allocates one attempt's namespace, obligating the caller to
// release it on every exit path.
//
//navplint:fact mint
func mint(id uint64, attempt int) uint64 {
	return id<<8 | uint64(attempt+1)
}

type cluster struct{}

// ReleaseJob and ClearVarsPrefix are releases by name, like the wire
// Cluster's methods.
func (c *cluster) ReleaseJob(ns uint64)       {}
func (c *cluster) ClearVarsPrefix(pfx string) {}

// run stands in for Work.Run under the namespace.
func (c *cluster) run(ns uint64) error { return nil }
