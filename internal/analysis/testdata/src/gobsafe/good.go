package gobsafe

import (
	"time"

	"repro/internal/wire"
)

// cleanState is the true-negative fixture: every field round-trips
// through gob intact — exported throughout, with time.Time allowed
// because it implements GobEncode itself.
type cleanState struct {
	Row     []float64
	Started time.Time
	Tags    map[string]int
	Next    *cleanState
}

func registerGood(ctx *wire.Ctx) {
	wire.RegisterState(&cleanState{})
	ctx.SetState(&cleanState{Row: []float64{1}})
}
