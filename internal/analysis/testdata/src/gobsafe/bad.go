// Package gobsafe exercises the gobsafe analyzer: agent state that gob
// would truncate or reject must be caught before a checkpoint replays it.
package gobsafe

import (
	"encoding/gob"

	"repro/internal/wire"
)

// leakyState carries a field gob silently drops.
type leakyState struct {
	Visible int
	hidden  []float64
}

// chanState carries a field gob refuses at encode time.
type chanState struct {
	Results chan int
}

// nested hides the problem one level down.
type nested struct {
	Inner inner
}

type inner struct {
	ok bool
	OK bool
}

func registerBad() {
	wire.RegisterState(&leakyState{}) // want `field hidden of leakyState is unexported`
	gob.Register(nested{})            // want `field Inner.ok of nested is unexported`
}

func injectBad(cl *wire.Cluster, ctx *wire.Ctx) {
	cl.Inject(0, "b", chanState{})            // want `field Results of chanState has type chan int`
	ctx.SetState(&leakyState{Visible: 1})     // want `field hidden of leakyState is unexported`
	ctx.Inject("b", leakyState{})             // want `field hidden of leakyState is unexported`
	_ = gob.NewEncoder(nil).Encode(&nested{}) // want `field Inner.ok of nested is unexported`
}
