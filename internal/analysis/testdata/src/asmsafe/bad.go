package asmsafe

// KernExported is an assembly-backed entry point other packages could
// name directly, skipping the dispatcher.
func KernExported(n int) // want `assembly-backed function KernExported is exported`

// callDirect bypasses the dispatcher from another file.
func callDirect(p *float64) {
	kernfast(3, p) // want `kernfast is assembly-backed and declared in stub.go`
}

// takeRef leaks the assembly entry point as a value — just as unsafe
// as calling it, since the dispatch decision is lost.
var takeRef = kernfast // want `kernfast is assembly-backed and declared in stub.go`
