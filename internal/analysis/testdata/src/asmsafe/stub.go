// Package asmsafe exercises the asmsafe analyzer: assembly-backed
// functions (bodyless declarations) must stay unexported and be
// referenced only from the file that declares them, which owns the
// feature-detect dispatcher.
package asmsafe

// kernfast is assembly-backed: a declaration with no body.
func kernfast(n int, p *float64)

// hasFMA stands in for the CPU feature probe.
var hasFMA bool

// dispatch is the feature-detect dispatcher living next to the
// declaration; its reference to kernfast is the one legal call site.
func dispatch(n int, p *float64) {
	if hasFMA {
		kernfast(n, p)
		return
	}
	kernSlow(n, p)
}

// kernSlow is the portable fallback.
func kernSlow(n int, p *float64) {
	for i := 0; i < n; i++ {
		*p += 1
	}
}
