package asmsafe

// user reaches the fast kernel only through the dispatcher; calling
// the portable fallback directly is also fine — it has a body.
func user(p *float64) {
	dispatch(4, p)
	kernSlow(4, p)
}
