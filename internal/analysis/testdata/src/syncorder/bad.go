package syncorder

// directWrite acknowledges a mutation straight onto the wire with no
// sync in between.
func directWrite(n *node, b []byte) {
	n.mutate()
	n.conn.Write(b) // want `externalizes the effect of a durable mutation`
}

// viaHelper externalizes through a helper whose summary writes before
// its own first sync.
func viaHelper(n *node, b []byte) {
	n.mutate()
	n.send(b) // want `externalizes the effect of a durable mutation`
}

// dirtyHelper leaves the path dirty for its caller.
func dirtyHelper(n *node) { n.mutate() }

// throughDirtyHelper picks up dirt from a callee's summary, not a local
// mutation.
func throughDirtyHelper(n *node, b []byte) {
	dirtyHelper(n)
	n.send(b) // want `externalizes the effect of a durable mutation`
}

// branchMissesSync syncs on only one arm; the join is still dirty.
func branchMissesSync(n *node, b []byte, ok bool) {
	n.mutate()
	if ok {
		n.sync()
	}
	n.send(b) // want `externalizes the effect of a durable mutation`
}

// closureUnsynced calls the reply closure on a dirty path; the binding
// is single-assignment, so the closure's externalizing summary applies
// at the call site.
func closureUnsynced(n *node, b []byte) {
	reply := func() bool { return n.send(b) }
	n.mutate()
	reply() // want `externalizes the effect of a durable mutation`
}
