package syncorder

// syncThenSend is the contract: mutate, persist, acknowledge.
func syncThenSend(n *node, b []byte) {
	n.mutate()
	if err := n.sync(); err != nil {
		return
	}
	n.send(b)
}

// persisted cleans before returning, so callers inherit a clean path.
func persisted(n *node) {
	n.mutate()
	n.sync()
}

// throughCleanHelper trusts the helper's cleans-at-exit summary.
func throughCleanHelper(n *node, b []byte) {
	persisted(n)
	n.send(b)
}

// closureSynced is the daemon's reply-closure idiom on the correct
// ordering.
func closureSynced(n *node, b []byte) {
	reply := func() bool { return n.send(b) }
	n.mutate()
	n.sync()
	reply()
}

// sendOnly externalizes with nothing durable pending — reads, pings,
// and snapshots never need a sync.
func sendOnly(n *node, b []byte) {
	n.send(b)
}

// dirtyExitWithoutSend leaves durable state unsynced but externalizes
// nothing; promptness is the persister's problem, not syncorder's.
func dirtyExitWithoutSend(n *node) {
	n.mutate()
}
