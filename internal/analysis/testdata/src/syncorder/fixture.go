// Package syncorder exercises the persist-before-acknowledge analyzer
// over a miniature of the wire daemon: an annotated durable mutation, an
// annotated persister sync, and a conn that replies leave on. The same
// //navplint:fact vocabulary the real runtime uses seeds the fact layer
// here.
package syncorder

import "net"

type node struct {
	conn net.Conn
}

// mutate stands in for accept/inject/store.set: it changes state the
// persister owns, so the path is dirty until sync runs.
//
//navplint:fact durable
func (n *node) mutate() {}

// sync stands in for nodeState.sync: the image is on disk when it
// returns.
//
//navplint:fact sync
func (n *node) sync() error { return nil }

// send externalizes — a conn write a remote peer can observe. Its
// summary carries "externalizes before its own first sync", so callers
// are judged by their own sigma at the call.
func (n *node) send(b []byte) bool {
	_, err := n.conn.Write(b)
	return err == nil
}
