// edge.go exercises the corners of line-level suppression. Unlike
// suppress.go this file carries no file-wide exemption, so every
// directive here must pull its own weight; the companion test asserts
// that none of these sites produce a finding.
package suppress

import "time"

// multiLineStatement puts the flagged call mid-way through a statement
// that spans several lines: the end-of-line directive sits on the line
// the diagnostic is reported at, which is not the statement's first
// line.
func multiLineStatement() int64 {
	sum := add(
		time.Now().UnixNano(), //lint:ignore simsafe deliberate wall-clock read, fixture for end-of-line suppression mid-statement
		1,
	)
	return sum
}

func add(a, b int64) int64 { return a + b }

// nextLine uses the directive's own-line-plus-next reach.
func nextLine() time.Time {
	//lint:ignore simsafe deliberate wall-clock read, fixture for next-line suppression
	return time.Now()
}

// multiName suppresses two analyzers with one comma-separated directive:
// the nil-path allocation (metricsafe) and the wall-clock read (simsafe)
// land on the same line.
type lazyClock struct{ last time.Time }

func (c *lazyClock) stamp() []time.Time {
	if c == nil {
		//lint:ignore metricsafe,simsafe one startup-only allocation and wall-clock read, fixture for multi-analyzer suppression
		return []time.Time{time.Now()}
	}
	return nil
}
