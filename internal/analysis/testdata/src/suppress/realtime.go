// realtime.go checks that a navplint:exempt directive attached to a
// grouped declaration — not the package clause — still exempts the
// file: the index scans every comment in the file, so the directive can
// live next to the state it justifies.
package suppress

import "time"

// The wall-clock epoch pair is real-backend state by design; both
// initializers in the group are covered by the one directive.
//
//navplint:exempt simsafe
var (
	epoch   = time.Now()
	started = time.Now()
)

// laterInSameFile is also covered: the exemption is file-scoped no
// matter where in the file the directive sits.
func laterInSameFile() time.Time {
	return time.Now()
}

func init() {
	_ = epoch
	_ = started
}
