// Package suppress exercises the suppression directives themselves:
// the whole file is exempt from simsafe, and a malformed lint:ignore
// (no analyzer name, no reason) is itself reported.
//
//navplint:exempt simsafe
package suppress

import "time"

func wallClock() time.Time {
	return time.Now() // exempted file-wide: no finding expected
}

//lint:ignore
func malformed() time.Time {
	return time.Now()
}
