package hopcheck

import "repro/internal/navp"

// relay hops on behalf of its caller; the fact layer marks its summary
// as hopping, so hopcheck treats a call to it as a navigation point.
func relay(ag *navp.Agent, dst int) {
	ag.Hop(dst)
}

// bounce hops through a second level of helper: the hop fact is
// transitive through summaries.
func bounce(ag *navp.Agent) {
	relay(ag, 0)
}

// throughHelper is the interprocedural escape: the node reference is
// stale after the helper's buried Hop.
func throughHelper(sys *navp.System) {
	sys.Inject(0, "bad-relay", func(ag *navp.Agent) {
		nd := ag.Node()
		relay(ag, 1)
		nd.Set("x", 1) // want `node reference "nd" crosses a Hop`
	})
}

// throughTwoHelpers needs the hop fact to survive two summary levels.
func throughTwoHelpers(sys *navp.System) {
	sys.Inject(0, "bad-bounce", func(ag *navp.Agent) {
		nd := ag.Node()
		bounce(ag)
		_ = nd.Get("x") // want `node reference "nd" crosses a Hop`
	})
}

// work computes but never hops; calling it must not advance the epoch.
func work(ag *navp.Agent) {
	ag.Compute(1, func() {})
}

// helperNoHop keeps its node reference valid across a non-hopping
// helper.
func helperNoHop(sys *navp.System) {
	sys.Inject(0, "good-helper", func(ag *navp.Agent) {
		nd := ag.Node()
		work(ag)
		nd.Set("x", 1)
	})
}
