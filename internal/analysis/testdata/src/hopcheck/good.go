package hopcheck

import "repro/internal/navp"

// rebound is the true-negative fixture: every node reference is re-read
// from ag.Node() after each navigation, as the locality rule requires.
func rebound(sys *navp.System) {
	sys.Inject(0, "good", func(ag *navp.Agent) {
		nd := ag.Node()
		nd.Set("x", 1)
		ag.Hop(1)
		nd = ag.Node()
		nd.Set("x", 2)
		for i := 0; i < 3; i++ {
			ag.Hop(i)
			cur := ag.Node()
			cur.Set("k", i)
		}
	})
}

// injected proves a child's hops do not stale the parent's references:
// the injected agent navigates, the parent stays put.
func injected(sys *navp.System) {
	sys.Inject(0, "good-inject", func(ag *navp.Agent) {
		home := ag.Node()
		ag.Inject("child", func(c *navp.Agent) {
			c.Hop(1)
			c.Node().Set("y", 2)
		})
		home.Set("x", 1)
	})
}
