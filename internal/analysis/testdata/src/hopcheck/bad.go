// Package hopcheck exercises the hopcheck analyzer: *navp.Node
// references that survive a Hop are remote accesses without navigation.
package hopcheck

import "repro/internal/navp"

// straightLine is the canonical violation: the node reference is bound,
// the agent navigates away, and the stale reference is dereferenced.
func straightLine(sys *navp.System) {
	sys.Inject(0, "bad", func(ag *navp.Agent) {
		nd := ag.Node()
		ag.Hop(1)
		nd.Set("x", 1) // want `node reference "nd" crosses a Hop`
	})
}

// inLoop binds outside the loop and hops inside it: the use is fine on
// iteration one and stale from iteration two on.
func inLoop(sys *navp.System) {
	sys.Inject(0, "bad-loop", func(ag *navp.Agent) {
		home := ag.Node()
		for i := 0; i < 4; i++ {
			home.Set("k", i) // want `node reference "home" crosses a Hop`
			ag.Hop(i % 2)
		}
	})
}

// branch hops on only one path; the merged state must still flag the
// use below the if.
func branch(sys *navp.System) {
	sys.Inject(0, "bad-branch", func(ag *navp.Agent) {
		nd := ag.Node()
		if nd.ID() == 0 {
			ag.Hop(1)
		}
		_ = nd.Get("x") // want `node reference "nd" crosses a Hop`
	})
}

// captured smuggles the stale reference into a compute closure.
func captured(sys *navp.System) {
	sys.Inject(0, "bad-closure", func(ag *navp.Agent) {
		nd := ag.Node()
		ag.Hop(1)
		ag.Compute(10, func() {
			nd.Set("y", 2) // want `node reference "nd" crosses a Hop`
		})
	})
}
