// Package metricsafe exercises the metrics hot-path analyzer: registry
// instrument lookups inside loops with loop-invariant names, and
// allocating nil-receiver discard paths.
package metricsafe

import "repro/internal/metrics"

// hotLoop resolves the same counter on every iteration; the lookup is a
// map hit under the registry mutex and belongs outside the loop.
func hotLoop(r *metrics.Registry, frames [][]byte) {
	for _, f := range frames {
		c := r.Counter("frames_sent") // want `hoist the handle out of the loop`
		c.Add(int64(len(f)))
	}
}

// nestedInvariant is invariant with respect to both enclosing loops.
func nestedInvariant(r *metrics.Registry, rows [][]int) {
	for _, row := range rows {
		for range row {
			r.Gauge("depth").Set(1) // want `hoist the handle out of the loop`
		}
	}
}

// histLoop covers the third instrument kind and a classic counted loop.
func histLoop(r *metrics.Registry, n int) {
	for i := 0; i < n; i++ {
		r.Histogram("latency_us", nil).Observe(int64(i)) // want `hoist the handle out of the loop`
	}
}

// gauges is a fixture-local registry for the discard rule.
type gauges struct{ v int64 }

type registry struct{ m map[string]*gauges }

// gauge allocates a fresh discard gauge per call on the nil path —
// disabled metrics would allocate on every instrument operation.
func (r *registry) gauge(name string) *gauges {
	if r == nil {
		return &gauges{} // want `stay allocation-free`
	}
	g, ok := r.m[name]
	if !ok {
		g = &gauges{}
		r.m[name] = g
	}
	return g
}

// buckets allocates a slice on the nil path.
func (r *registry) buckets(n int) []int64 {
	if r == nil {
		return make([]int64, n) // want `stay allocation-free`
	}
	return nil
}
