package metricsafe

import "repro/internal/metrics"

// hoisted resolves the counter once and reuses the handle — the
// wireMetrics/schedMetrics struct idiom.
func hoisted(r *metrics.Registry, frames [][]byte) {
	c := r.Counter("frames_sent")
	for _, f := range frames {
		c.Add(int64(len(f)))
	}
}

// register is a registration loop: the name depends on the loop
// variable, so every iteration resolves a distinct instrument.
func register(r *metrics.Registry, states []string) map[string]*metrics.Gauge {
	out := make(map[string]*metrics.Gauge, len(states))
	for _, s := range states {
		out[s] = r.Gauge("state_" + s)
	}
	return out
}

// derivedName mutates the name inside the loop body, so the lookup is
// variant even though the loop variable never appears in the argument.
func derivedName(r *metrics.Registry, n int) {
	name := "shard_0"
	for i := 0; i < n; i++ {
		r.Counter(name).Inc()
		name = "shard_1"
	}
}

// outsideLoop is the plain non-loop lookup.
func outsideLoop(r *metrics.Registry) {
	r.Counter("one_shot").Inc()
}

// sharedDiscard is the allocation-free nil path: one package-level
// instance serves every disabled call.
var sharedDiscard gauges

func (r *registry) gaugeShared(name string) *gauges {
	if r == nil {
		return &sharedDiscard
	}
	return r.m[name]
}

// valueReturn returns a value, not a fresh heap object; copying a zero
// value is fine on the discard path (the real Snapshot shape).
func (r *registry) snapshot() gauges {
	if r == nil {
		return gauges{}
	}
	return *r.m["all"]
}

// suppressedAlloc documents an intentional nil-path allocation.
func (r *registry) suppressedAlloc() []int64 {
	if r == nil {
		//lint:ignore metricsafe this path runs once at startup, never per-operation; the fresh slice is deliberate.
		return make([]int64, 4)
	}
	return nil
}
