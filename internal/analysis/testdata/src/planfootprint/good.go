package planfootprint

import (
	"strconv"

	"repro/internal/core"
)

type grid struct{ cells [][]float64 }

func (g *grid) Cell(i, j int) *float64 { return &g.cells[i][j] }

// matched is the true-negative fixture: the declared footprint names
// exactly the index variables the body addresses data with, and the
// body's write is declared (commutative, as a reduction).
func matched(g *grid, i, j int) core.Item {
	return core.Item{
		ID:   "good-matched",
		Node: 0,
		Accesses: []core.Access{
			{Cell: "in" + strconv.Itoa(i)},
			{Cell: "out(" + strconv.Itoa(i) + "," + strconv.Itoa(j) + ")", Write: true, Commutative: true},
		},
		Fn: func() {
			for k := 0; k < 4; k++ {
				*g.Cell(i, j) += float64(k)
			}
		},
	}
}

// modelOnly has no body: cost-model items have nothing to cross-check.
func modelOnly(i int) core.Item {
	return core.Item{
		ID:       "good-model",
		Node:     i,
		Accesses: []core.Access{{Cell: "in" + strconv.Itoa(i)}},
		Fn:       nil,
	}
}
