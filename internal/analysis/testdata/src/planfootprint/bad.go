// Package planfootprint exercises the planfootprint analyzer: a
// core.Item body must agree with the Accesses footprint it declares.
package planfootprint

import (
	"strconv"

	"repro/internal/core"
)

// missingIndex indexes on j and writes, but declares a read-only
// footprint over i alone — core.Check would verify the wrong graph.
func missingIndex(data []float64, i, j int) core.Item {
	return core.Item{ // want `body indexes data with "j"` `no declared Access has Write`
		ID:       "bad-missing",
		Node:     0,
		Accesses: []core.Access{{Cell: "row" + strconv.Itoa(i)}},
		Fn:       func() { data[i*4+j] += 1 },
	}
}

// phantom declares a cell indexed by k that the body never touches,
// creating dependences that serialize legal parallelism.
func phantom(out []float64, i, k int) core.Item {
	return core.Item{ // want `declares an Access indexed by "k", but the body never uses it`
		ID:   "bad-phantom",
		Node: 0,
		Accesses: []core.Access{
			{Cell: "out" + strconv.Itoa(i), Write: true},
			{Cell: "tmp" + strconv.Itoa(k)},
		},
		Fn: func() { out[i] = 1 },
	}
}

// blind has a body but no footprint at all.
func blind(total *float64) core.Item {
	return core.Item{ // want `declares no Accesses`
		ID: "bad-blind",
		Fn: func() { *total += 1 },
	}
}
