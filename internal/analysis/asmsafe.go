package analysis

import (
	"go/ast"
	"go/types"
)

// NewAsmSafe returns the asmsafe analyzer.
//
// Assembly-backed functions (a Go func declaration with no body,
// implemented in a .s file) sit outside every portability guarantee
// the dispatcher provides: they assume ISA features the host may not
// have, and they skip the bounds-checked wrapper that turns a driver
// bug into a Go panic instead of a segfault. The matrix package's
// contract (DESIGN.md §15) is that such entry points are reachable
// only through the runtime feature-detect dispatcher in their own
// declaring file — never called directly from sim-domain or any other
// code. asmsafe enforces the two halves of that contract structurally:
//
//   - an assembly-backed function must be unexported, so no other
//     package can name it at all;
//   - every reference to it must come from the file that declares it —
//     the file that owns the wrapper and the CPU-feature dispatch —
//     so a reviewer can check the safety argument in one screen.
func NewAsmSafe() *Analyzer {
	a := &Analyzer{
		Name: "asmsafe",
		Doc: "requires assembly-backed functions (bodyless declarations) to be " +
			"unexported and referenced only from their declaring file, so every " +
			"call is routed through the feature-detect dispatcher next to them",
	}
	a.Run = func(pass *Pass) {
		// Pass 1: collect the assembly-backed declarations and the file
		// each one lives in.
		declFile := map[*types.Func]string{}
		for _, f := range pass.Pkg.Files {
			fname := pass.Pkg.Fset.Position(f.Pos()).Filename
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body != nil {
					continue
				}
				obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				declFile[obj] = fname
				if fd.Name.IsExported() {
					pass.Reportf(fd.Name.Pos(),
						"assembly-backed function %s is exported: other packages could "+
							"call it without the feature-detect dispatch; unexport it and "+
							"export a dispatching wrapper instead", fd.Name.Name)
				}
			}
		}
		if len(declFile) == 0 {
			return
		}
		// Pass 2: every use must come from the declaring file.
		for _, f := range pass.Pkg.Files {
			fname := pass.Pkg.Fset.Position(f.Pos()).Filename
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				home, tracked := declFile[fn]
				if !tracked || home == fname {
					return true
				}
				pass.Reportf(id.Pos(),
					"%s is assembly-backed and declared in %s: call it only from that "+
						"file's feature-detect dispatcher so the pure-Go fallback stays "+
						"selectable on every path", fn.Name(), shortPath(home))
				return true
			})
		}
	}
	return a
}

// shortPath trims a filename to its base for diagnostics; full paths
// vary by checkout and would make the golden fixtures unportable.
func shortPath(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}
