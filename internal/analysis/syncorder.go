package analysis

import (
	"repro/internal/analysis/facts"
)

// NewSyncOrder returns the syncorder analyzer.
//
// The persist-before-acknowledge rule (persist.go, DESIGN.md §13.2):
// a daemon must sync the persister before externalizing the effect of a
// durable mutation — before the hop ack for an accepted agent, before
// the msgOK reply to a control write. A crash between mutation and sync
// is then indistinguishable from a crash before the mutation, because
// no remote party ever saw an acknowledgement.
//
// The analysis is interprocedural over the fact layer's sync lattice:
// functions annotated `//navplint:fact durable` (store.set, accept,
// inject, cancel marks, namespace release) make a path dirty; functions
// annotated `//navplint:fact sync` (nodeState.sync) make it clean;
// summaries propagate DirtyAtExit / CleansAtExit / ExternalizesUnsynced
// through helpers and single-assignment closure bindings (the daemon's
// reply path). A conn write — direct, or through a callee that may
// write before its own first sync — on a definitely-dirty path is
// reported at the externalizing call.
//
// Suppress with `//lint:ignore syncorder <reason>` on the reported call
// when an unsynced externalization is genuinely not an acknowledgement
// (none exist in the runtime today).
func NewSyncOrder() *Analyzer {
	a := &Analyzer{
		Name: "syncorder",
		Doc: "flags paths that externalize a durable mutation's effect (conn write, " +
			"ack, msgOK) before the persister synced it — the persist-before-acknowledge rule",
	}
	a.Run = func(pass *Pass) {
		for _, sum := range pass.Facts.PackageSummaries(pass.Pkg.Path) {
			for _, f := range sum.Findings {
				if f.Code == facts.FindExternUnsynced {
					pass.Reportf(f.Pos,
						"call to %s externalizes the effect of a durable mutation that has not "+
							"been synced on this path; sync the persister first (persist-before-acknowledge)",
						f.Detail)
				}
			}
		}
	}
	return a
}
