package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// metricsPath is the module's metrics package.
const metricsPath = "repro/internal/metrics"

// NewMetricSafe returns the metricsafe analyzer.
//
// Two hot-path rules for the metrics layer:
//
//  1. Registry instrument lookups (Counter/Gauge/Histogram) are a map
//     hit under a mutex. Inside a loop, a lookup whose name cannot
//     change across iterations resolves the same instrument every time
//     — hoist the handle out of the loop (the wireMetrics/schedMetrics
//     structs of pre-resolved handles are the idiom). A lookup whose
//     name depends on a loop variable is a registration loop creating
//     distinct instruments and is fine.
//
//  2. The nil-registry discard path must be allocation-free: metrics
//     are designed to be compiled out by passing a nil registry, so a
//     discard branch that allocates (&T{...}, new, make) on every call
//     defeats the point. Return a shared package-level discard instance
//     instead.
//
// Rule 1 matches the module's metrics.Registry; rule 2 matches any
// method guarding on a nil receiver, so fixture registries exercise it
// too.
func NewMetricSafe() *Analyzer {
	a := &Analyzer{
		Name: "metricsafe",
		Doc: "flags loop-invariant registry instrument lookups inside loops and " +
			"allocations on nil-registry discard paths",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkLoopLookups(pass, fn.Body)
				checkDiscardAllocs(pass, fn)
			}
		}
	}
	return a
}

// lookupMethod reports whether call is an instrument lookup on the
// metrics registry, returning the method name.
func lookupMethod(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := funcFor(pass.Pkg.Info, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !namedIn(sig.Recv().Type(), metricsPath, "Registry") {
		return "", false
	}
	return fn.Name(), true
}

// checkLoopLookups flags instrument lookups inside for/range loops whose
// name argument is invariant with respect to every enclosing loop.
func checkLoopLookups(pass *Pass, body *ast.BlockStmt) {
	reported := map[token.Pos]bool{}
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			var loopBody *ast.BlockStmt
			switch l := m.(type) {
			case *ast.ForStmt:
				loopBody = l.Body
			case *ast.RangeStmt:
				loopBody = l.Body
			default:
				return true
			}
			vars := loopAssignedVars(pass, m)
			ast.Inspect(loopBody, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := lookupMethod(pass, call)
				if !ok || len(call.Args) == 0 || reported[call.Pos()] {
					return true
				}
				if !mentionsVars(pass, call.Args[0], vars) {
					reported[call.Pos()] = true
					pass.Reportf(call.Pos(),
						"registry %s lookup inside a loop with a loop-invariant name resolves "+
							"the same instrument every iteration; hoist the handle out of the loop "+
							"(each lookup is a map hit under the registry mutex)", name)
				}
				return true
			})
			return true
		})
	}
	visit(body)
}

// loopAssignedVars collects every variable the loop defines or assigns:
// range key/value, for-init variables, and anything assigned in the
// body. A lookup name mentioning one of these can differ per iteration.
func loopAssignedVars(pass *Pass, loop ast.Node) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	addIdent := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := pass.ObjectOf(id).(*types.Var); ok {
			vars[v] = true
		}
	}
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		if init, ok := l.Init.(*ast.AssignStmt); ok {
			for _, lhs := range init.Lhs {
				addIdent(lhs)
			}
		}
		body = l.Body
	case *ast.RangeStmt:
		if l.Key != nil {
			addIdent(l.Key)
		}
		if l.Value != nil {
			addIdent(l.Value)
		}
		body = l.Body
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				addIdent(lhs)
			}
		case *ast.IncDecStmt:
			addIdent(s.X)
		}
		return true
	})
	return vars
}

// mentionsVars reports whether expr references any of the given
// variables at any depth.
func mentionsVars(pass *Pass, expr ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.Pkg.Info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkDiscardAllocs flags allocations inside `if recv == nil { ... }`
// branches of methods — the discard path disabled metrics take on every
// single instrument operation.
func checkDiscardAllocs(pass *Pass, fn *ast.FuncDecl) {
	recv := receiverVar(pass, fn)
	if recv == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || !isNilCheckOf(pass, ifStmt.Cond, recv) {
			return true
		}
		ast.Inspect(ifStmt.Body, func(m ast.Node) bool {
			switch alloc := m.(type) {
			case *ast.UnaryExpr:
				if alloc.Op == token.AND {
					if _, isLit := ast.Unparen(alloc.X).(*ast.CompositeLit); isLit {
						reportDiscardAlloc(pass, alloc.Pos())
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(alloc.Fun).(*ast.Ident); ok {
					if b, isb := pass.Pkg.Info.Uses[id].(*types.Builtin); isb &&
						(b.Name() == "new" || b.Name() == "make") {
						reportDiscardAlloc(pass, alloc.Pos())
					}
				}
			}
			return true
		})
		return true
	})
}

func reportDiscardAlloc(pass *Pass, pos token.Pos) {
	pass.Reportf(pos,
		"nil-receiver discard path allocates on every call; return a shared "+
			"package-level discard instance so disabled metrics stay allocation-free")
}

// receiverVar returns the method's receiver variable, or nil.
func receiverVar(pass *Pass, fn *ast.FuncDecl) *types.Var {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pass.Pkg.Info.Defs[fn.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// isNilCheckOf matches `recv == nil` / `nil == recv`.
func isNilCheckOf(pass *Pass, cond ast.Expr, recv *types.Var) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		v, _ := pass.Pkg.Info.Uses[id].(*types.Var)
		return v == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}
