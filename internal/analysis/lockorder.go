package analysis

import (
	"sort"
	"strings"

	"repro/internal/analysis/facts"
)

// NewLockOrder returns the lockorder analyzer.
//
// Lock discipline for the serving layers, proven statically instead of
// sampled by the race detector:
//
//  1. The static lock graph (edges "acquired B while holding A", with
//     acquisitions reached through callee summaries included) must be
//     acyclic. A cycle is a deadlock two goroutines can reach by taking
//     the edges in opposite orders.
//  2. No mutex may be held across an indefinitely-blocking operation:
//     channel send/receive, select without default, conn I/O, net.Dial,
//     time.Sleep, WaitGroup.Wait, an agent Hop, or a call whose summary
//     may block. One slow peer must never stall every other user of the
//     lock (the daemon.link dial bug class).
//  3. A mutex acquired on a path must be released on it (or deferred);
//     returning while holding is reported at the acquisition.
//  4. Re-acquiring a lock already held on the path is reported: Go
//     mutexes are not reentrant, so "lock, call helper that locks the
//     same mutex" self-deadlocks.
//
// sync.Cond.Wait is deliberately not rule 2: it atomically releases the
// mutex it was built over, so the scheduler's worker loop and the events
// table are the idiom, not a bug — but a function containing it is
// "may block" to its callers.
//
// Lock identity is instance-insensitive ("pkg.Type.field"), so two
// instances of one type used in a hand-over-hand pattern would need a
// `//lint:ignore lockorder <reason>`; the runtime has no such pattern.
func NewLockOrder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc: "builds the static lock graph across wire+sched and flags acquisition " +
			"cycles, mutexes held across blocking calls, unreleased paths, and re-acquisition",
	}
	a.Run = func(pass *Pass) {
		for _, sum := range pass.Facts.PackageSummaries(pass.Pkg.Path) {
			for _, f := range sum.Findings {
				switch f.Code {
				case facts.FindBlockHeld:
					pass.Reportf(f.Pos,
						"mutex %s — a lock held across an indefinite wait stalls every contender; "+
							"release it before blocking", f.Detail)
				case facts.FindReacquire:
					pass.Reportf(f.Pos,
						"mutex %s acquired while already held on this path — Go mutexes are not "+
							"reentrant, so this self-deadlocks", f.Detail)
				case facts.FindExitHeld:
					pass.Reportf(f.Pos,
						"mutex %s is still held when some path returns and no unlock is deferred", f.Detail)
				}
			}
		}
		reportLockCycles(pass)
	}
	return a
}

// reportLockCycles runs cycle detection over the whole analyzed set's
// lock graph and reports the edges of each cycle that sit in this
// package (cross-package cycles surface in every participating package;
// Run's dedup keeps one diagnostic per position).
func reportLockCycles(pass *Pass) {
	edges := pass.Facts.Edges()
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.From] == nil {
			adj[e.From] = map[string]bool{}
		}
		adj[e.From][e.To] = true
	}
	scc := stronglyConnected(adj)
	comp := map[string]int{}
	for i, c := range scc {
		for _, id := range c {
			comp[id] = i
		}
	}
	size := make(map[int]int, len(scc))
	for i, c := range scc {
		size[i] = len(c)
	}
	reported := map[string]bool{}
	for _, e := range edges {
		ci, oki := comp[e.From]
		cj, okj := comp[e.To]
		if !oki || !okj || ci != cj || size[ci] < 2 {
			continue
		}
		// Only report edges whose position lies in this package's files.
		file := pass.Pkg.Fset.Position(e.Pos).Filename
		if !strings.HasPrefix(file, pass.Pkg.Dir+"/") && file != pass.Pkg.Dir {
			continue
		}
		key := e.From + "->" + e.To
		if reported[key] {
			continue
		}
		reported[key] = true
		cycle := renderCycle(scc[ci], e.From)
		pass.Reportf(e.Pos,
			"acquiring %s while holding %s joins a lock-order cycle (%s); two goroutines "+
				"taking these edges in opposite orders deadlock",
			shortLock(e.To), shortLock(e.From), cycle)
	}
}

func shortLock(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		id = id[i+1:]
	}
	if i := strings.IndexByte(id, '.'); i >= 0 {
		return id[i+1:]
	}
	return id
}

func renderCycle(ids []string, first string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	// Rotate so the cycle reads from the reported edge's source.
	for i, id := range sorted {
		if id == first {
			sorted = append(sorted[i:], sorted[:i]...)
			break
		}
	}
	parts := make([]string, 0, len(sorted)+1)
	for _, id := range sorted {
		parts = append(parts, shortLock(id))
	}
	parts = append(parts, shortLock(sorted[0]))
	return strings.Join(parts, " → ")
}

// stronglyConnected is Tarjan's algorithm over the lock graph.
func stronglyConnected(adj map[string]map[string]bool) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0

	var nodes []string
	seen := map[string]bool{}
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var tos []string
		for to := range adj[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if _, ok := index[to]; !ok {
				strong(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return out
}
