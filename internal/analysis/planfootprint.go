package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// corePath is the import path of the plan-transformation framework.
const corePath = "repro/internal/core"

// NewPlanFootprint returns the planfootprint analyzer.
//
// core.Check verifies that a transformed plan preserves the sequential
// program's dependences — but only against the Accesses footprint each
// item *declares*. A body that reads or writes cells its declaration
// omits silently disarms the checker: DSC, Pipelining, and
// Phase-shifting would be "verified safe" against the wrong dependence
// graph. planfootprint cross-checks each core.Item composite literal
// whose Fn is a function literal against its declared Accesses:
//
//   - an item with a body must declare a non-empty footprint;
//   - every free index variable the body uses to address data (as an
//     index expression or as an argument to a method on captured data)
//     must appear in some declared Cell expression;
//   - every variable a Cell expression mentions must be used by the
//     body (an over-declared footprint produces phantom dependences
//     that serialize legal parallelism);
//   - a body that assigns through captured state must declare at least
//     one Write access.
//
// The check is syntactic over the literal; items whose accesses are
// computed elsewhere are out of scope (and out of warranty).
func NewPlanFootprint() *Analyzer {
	a := &Analyzer{
		Name: "planfootprint",
		Doc: "cross-checks a core.Item body's read/write index expressions " +
			"against the Accesses footprint it declares to core.Check, so the " +
			"dependence checker cannot be lied to",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				t := pass.TypeOf(lit)
				if t == nil || !namedIn(t, corePath, "Item") {
					return true
				}
				checkItem(pass, lit)
				return true
			})
		}
	}
	return a
}

func checkItem(pass *Pass, lit *ast.CompositeLit) {
	var accesses ast.Expr
	var fn *ast.FuncLit
	var fnSet bool
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue // positional Item literals don't occur; skip
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Accesses":
			accesses = kv.Value
		case "Fn":
			fnSet = true
			fn, _ = ast.Unparen(kv.Value).(*ast.FuncLit)
		}
	}
	if !fnSet || isNilExpr(fn, pass, lit) {
		return // model-only item: nothing to cross-check
	}
	if fn == nil {
		return // body computed elsewhere; out of syntactic scope
	}
	accLit, _ := ast.Unparen(accesses).(*ast.CompositeLit)
	if accesses == nil || (accLit != nil && len(accLit.Elts) == 0) {
		pass.Reportf(lit.Pos(),
			"core.Item has a body but declares no Accesses: core.Check cannot see its "+
				"footprint, so the plan transformations would be verified against a lie")
		return
	}
	if accLit == nil {
		return // accesses built elsewhere; can't cross-check syntactically
	}

	declared := declaredIndexVars(pass, accLit)
	declaredWrite := declaresWrite(accLit)
	body := bodyFootprint(pass, fn)

	for _, v := range sortedVars(body.indexVars) {
		if !declared[v] {
			pass.Reportf(lit.Pos(),
				"core.Item body indexes data with %q, but no declared Access cell mentions "+
					"it: the dependence checker is blind to that footprint dimension",
				v.Name())
		}
	}
	for _, v := range sortedVars(declared) {
		if !body.usedVars[v] {
			pass.Reportf(lit.Pos(),
				"core.Item declares an Access indexed by %q, but the body never uses it: "+
					"the over-declared footprint creates phantom dependences",
				v.Name())
		}
	}
	if body.writes && !declaredWrite {
		pass.Reportf(lit.Pos(),
			"core.Item body writes through captured state, but no declared Access has "+
				"Write: true — a conflicting reorder would pass core.Check")
	}
}

// isNilExpr reports whether the Fn field value was the literal nil (fn
// is nil in that case too, but so it is for non-literal expressions; we
// re-scan the elements to distinguish).
func isNilExpr(fn *ast.FuncLit, pass *Pass, lit *ast.CompositeLit) bool {
	if fn != nil {
		return false
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Fn" {
			if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok && id.Name == "nil" {
				return pass.ObjectOf(id) == types.Universe.Lookup("nil")
			}
		}
	}
	return false
}

// declaredIndexVars collects the integer-typed variables mentioned
// anywhere inside the Accesses literal's cell expressions.
func declaredIndexVars(pass *Pass, accLit *ast.CompositeLit) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(accLit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Pkg.Info.Uses[id].(*types.Var); ok && isIntVar(v) {
			out[v] = true
		}
		return true
	})
	return out
}

// declaresWrite reports whether any Access element sets Write: true.
func declaresWrite(accLit *ast.CompositeLit) bool {
	found := false
	ast.Inspect(accLit, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Write" {
			if val, ok := ast.Unparen(kv.Value).(*ast.Ident); ok && val.Name == "true" {
				found = true
			}
		}
		return true
	})
	return found
}

// footprint is what a body actually touches.
type footprint struct {
	// indexVars are free integer variables used to address data: inside
	// an index expression, or as an argument to a call on captured data.
	indexVars map[*types.Var]bool
	// usedVars are all free integer variables the body reads at all.
	usedVars map[*types.Var]bool
	// writes reports an assignment through captured state.
	writes bool
}

// bodyFootprint extracts the footprint of an item's function literal.
func bodyFootprint(pass *Pass, fn *ast.FuncLit) *footprint {
	fp := &footprint{indexVars: map[*types.Var]bool{}, usedVars: map[*types.Var]bool{}}
	free := func(id *ast.Ident) *types.Var {
		v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok || !isIntVar(v) {
			return nil
		}
		if v.Pos() >= fn.Pos() && v.Pos() < fn.End() {
			return nil // declared inside the body: a local loop index
		}
		return v
	}
	markIndexUses := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := free(id); v != nil {
					fp.indexVars[v] = true
				}
			}
			return true
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.Ident:
			if v := free(node); v != nil {
				fp.usedVars[v] = true
			}
		case *ast.IndexExpr:
			// x[i]: only data indexing counts, not generic instantiation.
			if _, isInst := pass.Pkg.Info.Instances[instIdent(node.X)]; !isInst {
				markIndexUses(node.Index)
			}
		case *ast.CallExpr:
			// method call on captured data (out.C.Block(mi, vj)): its
			// integer arguments address remote cells.
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				if _, isMethod := pass.Pkg.Info.Selections[sel]; isMethod && capturedRoot(pass, fn, sel.X) {
					for _, arg := range node.Args {
						markIndexUses(arg)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if writesCaptured(pass, fn, lhs) {
					fp.writes = true
				}
			}
		case *ast.IncDecStmt:
			if writesCaptured(pass, fn, node.X) {
				fp.writes = true
			}
		}
		return true
	})
	return fp
}

// instIdent digs the identifier out of a generic instantiation operand.
func instIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// capturedRoot reports whether the expression's root identifier is a
// variable captured from outside the function literal.
func capturedRoot(pass *Pass, fn *ast.FuncLit, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, ok := pass.Pkg.Info.Uses[x].(*types.Var)
			return ok && !(v.Pos() >= fn.Pos() && v.Pos() < fn.End())
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return false
		}
	}
}

// writesCaptured reports whether lhs assigns through state reachable
// from outside the literal (an indexed or field write rooted at a
// captured variable).
func writesCaptured(pass *Pass, fn *ast.FuncLit, lhs ast.Expr) bool {
	switch ast.Unparen(lhs).(type) {
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
		return capturedRoot(pass, fn, lhs)
	}
	return false
}

func isIntVar(v *types.Var) bool {
	basic, ok := v.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func sortedVars(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name() != out[j].Name() {
			return out[i].Name() < out[j].Name()
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}
