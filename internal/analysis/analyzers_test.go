package analysis

import (
	"strings"
	"testing"
)

// Each analyzer has a golden suite under testdata/src/<name>: bad.go
// carries `// want` expectations, good.go is the true-negative fixture.

func TestHopCheckFixtures(t *testing.T)      { RunWantTest(t, "hopcheck", NewHopCheck()) }
func TestGobSafeFixtures(t *testing.T)       { RunWantTest(t, "gobsafe", NewGobSafe()) }
func TestSimSafeFixtures(t *testing.T)       { RunWantTest(t, "simsafe", NewSimSafe()) }
func TestPlanFootprintFixtures(t *testing.T) { RunWantTest(t, "planfootprint", NewPlanFootprint()) }

// TestRepoPackagesClean self-applies every analyzer to the load-bearing
// module packages the analyzers know about — the dogfood guarantee that
// the repository obeys its own model. (cmd/navplint covers ./... in CI;
// this narrower set keeps the unit test fast.)
func TestRepoPackagesClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	analyzers := All()
	for _, a := range analyzers {
		if a.Name == "simsafe" {
			a.Filter = func(pkgPath string) bool {
				return strings.HasPrefix(pkgPath, loader.ModulePath+"/internal/") &&
					pkgPath != loader.ModulePath+"/internal/wire" &&
					pkgPath != loader.ModulePath+"/internal/sched"
			}
		}
	}
	for _, path := range []string{
		"repro/internal/core",
		"repro/internal/matmul",
		"repro/internal/summa",
		"repro/internal/stencil",
		"repro/internal/gentleman",
		"repro/internal/navp",
		"repro/internal/wire",
		"repro/internal/sched",
	} {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		assertNoFindings(t, Run([]*Package{pkg}, analyzers))
	}
}

// TestExpandPatterns checks the CLI's pattern expansion against the
// real module tree.
func TestExpandPatterns(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	want := map[string]bool{
		"repro":                   false, // module root has doc.go
		"repro/internal/analysis": false,
		"repro/internal/navp":     false,
		"repro/cmd/navplint":      false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
		if strings.Contains(p, "testdata") {
			t.Errorf("expansion leaked a testdata package: %s", p)
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("expansion missed %s (got %d packages)", p, len(paths))
		}
	}
	single, err := loader.Expand([]string{"./internal/core"})
	if err != nil {
		t.Fatalf("expand single: %v", err)
	}
	if len(single) != 1 || single[0] != "repro/internal/core" {
		t.Errorf("single-package pattern: got %v", single)
	}
}

// TestSuppressionDirectives checks the malformed-directive finding and
// file-level exemption behaviour directly.
func TestSuppressionDirectives(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir("testdata/src/suppress", "fixture/suppress")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{NewSimSafe()})
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	if len(diags) != 1 || diags[0].Analyzer != "navplint" ||
		!strings.Contains(diags[0].Message, "malformed lint:ignore") {
		t.Errorf("want exactly the malformed-directive finding, got %v", got)
	}
}
