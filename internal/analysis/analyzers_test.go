package analysis

import (
	"strings"
	"testing"

	"repro/internal/analysis/facts"
)

// Each analyzer has a golden suite under testdata/src/<name>: bad.go
// carries `// want` expectations, good.go is the true-negative fixture.

func TestHopCheckFixtures(t *testing.T)      { RunWantTest(t, "hopcheck", NewHopCheck()) }
func TestGobSafeFixtures(t *testing.T)       { RunWantTest(t, "gobsafe", NewGobSafe()) }
func TestSimSafeFixtures(t *testing.T)       { RunWantTest(t, "simsafe", NewSimSafe()) }
func TestPlanFootprintFixtures(t *testing.T) { RunWantTest(t, "planfootprint", NewPlanFootprint()) }
func TestAsmSafeFixtures(t *testing.T)       { RunWantTest(t, "asmsafe", NewAsmSafe()) }
func TestSyncOrderFixtures(t *testing.T)     { RunWantTest(t, "syncorder", NewSyncOrder()) }
func TestLockOrderFixtures(t *testing.T)     { RunWantTest(t, "lockorder", NewLockOrder()) }
func TestJobReleaseFixtures(t *testing.T)    { RunWantTest(t, "jobrelease", NewJobRelease()) }
func TestMetricSafeFixtures(t *testing.T)    { RunWantTest(t, "metricsafe", NewMetricSafe()) }

// TestRepoPackagesClean self-applies every analyzer, under the same
// domain filters cmd/navplint uses, to every package in the module —
// the dogfood guarantee that the repository obeys its own model. The
// packages run as one batch so the interprocedural fact layer sees the
// same cross-package view the CLI does.
func TestRepoPackagesClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	analyzers := All()
	ApplyDomainFilters(analyzers, loader.ModulePath)
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	assertNoFindings(t, Run(pkgs, analyzers))
}

// runUnsuppressed runs analyzers over one package with the suppression
// index bypassed — the control harness for directive tests.
func runUnsuppressed(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	fs := facts.Analyze([]*Package{pkg})
	var raw []Diagnostic
	for _, a := range analyzers {
		if a.Filter != nil && !a.Filter(pkg.Path) {
			continue
		}
		a.Run(&Pass{Analyzer: a, Pkg: pkg, Facts: fs, diags: &raw})
	}
	return raw
}

// TestExpandPatterns checks the CLI's pattern expansion against the
// real module tree.
func TestExpandPatterns(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	want := map[string]bool{
		"repro":                   false, // module root has doc.go
		"repro/internal/analysis": false,
		"repro/internal/navp":     false,
		"repro/cmd/navplint":      false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
		if strings.Contains(p, "testdata") {
			t.Errorf("expansion leaked a testdata package: %s", p)
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("expansion missed %s (got %d packages)", p, len(paths))
		}
	}
	single, err := loader.Expand([]string{"./internal/core"})
	if err != nil {
		t.Fatalf("expand single: %v", err)
	}
	if len(single) != 1 || single[0] != "repro/internal/core" {
		t.Errorf("single-package pattern: got %v", single)
	}
}

// TestSuppressionDirectives checks the malformed-directive finding and
// every suppression edge the fixture exercises: file-level exemption
// from the package clause (suppress.go) and from a grouped
// declaration's doc comment (realtime.go), end-of-line lint:ignore on
// the middle line of a multi-line statement, next-line reach, and a
// comma-separated directive silencing two analyzers — one of them from
// the new serving-invariant set — on one line (edge.go). The fixture is
// riddled with violations; exactly one diagnostic (the malformed
// directive, which can never be suppressed) may survive.
func TestSuppressionDirectives(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir("testdata/src/suppress", "fixture/suppress")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{NewSimSafe(), NewMetricSafe()})
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	if len(diags) != 1 || diags[0].Analyzer != "navplint" ||
		!strings.Contains(diags[0].Message, "malformed lint:ignore") {
		t.Errorf("want exactly the malformed-directive finding, got %v", got)
	}
}

// TestSuppressionCarriesWithoutDirectives is the control for the test
// above: stripping the directives out of the same code must surface the
// violations the directives were hiding, proving the fixture actually
// exercises suppression rather than analyzer blind spots.
func TestSuppressionCarriesWithoutDirectives(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir("testdata/src/suppress", "fixture/suppress")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	simsafe := 0
	for _, d := range runUnsuppressed(pkg, []*Analyzer{NewSimSafe(), NewMetricSafe()}) {
		if d.Analyzer == "simsafe" {
			simsafe++
		}
	}
	// suppress.go has 2 time.Now calls, realtime.go 3, edge.go 3.
	if simsafe != 8 {
		t.Errorf("unsuppressed run found %d simsafe findings, want 8 — the fixture's directives are not covering real violations", simsafe)
	}
}
