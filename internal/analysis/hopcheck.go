package analysis

import (
	"go/ast"
	"go/types"
)

// navpPath is the import path of the NavP runtime the analyzers know.
const navpPath = "repro/internal/navp"

// NewHopCheck returns the hopcheck analyzer.
//
// The NavP locality rule: an agent may only touch data on the node it
// currently occupies. A *navp.Node reference obtained before a Hop
// therefore points at a *remote* node after the hop — on the simulation
// and goroutine backends it still happens to work (one address space),
// but on a wire-style runtime it is a remote access without navigation,
// exactly the bug class the model forbids. hopcheck flags every read of
// a *navp.Node-typed variable that was last bound before a Hop() the
// agent has since performed.
//
// The analysis is intra-procedural and flow-ordered: each Hop call
// opens a new "hop epoch"; binding a node variable records the current
// epoch; using it in an older epoch reports. Loop bodies containing a
// Hop are walked twice so a variable bound outside the loop and used
// after the in-loop hop is caught on the simulated second iteration.
// Function literals are analyzed against a copy of the state at their
// creation point (an injected child starts on the node where Inject
// ran; hops inside the literal do not advance the parent's epoch).
func NewHopCheck() *Analyzer {
	a := &Analyzer{
		Name: "hopcheck",
		Doc: "flags *navp.Node references that survive a Hop — remote access " +
			"without navigation, which the NavP locality model forbids",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				hc := &hopChecker{pass: pass, reported: map[string]bool{}}
				hc.walkBody(fn.Body, newHopState())
			}
		}
	}
	return a
}

// hopState is the flow state at one program point.
type hopState struct {
	epoch int                // hops performed so far on this path
	bind  map[*types.Var]int // node-typed var → epoch at last binding
}

func newHopState() *hopState {
	return &hopState{bind: map[*types.Var]int{}}
}

func (s *hopState) clone() *hopState {
	c := &hopState{epoch: s.epoch, bind: make(map[*types.Var]int, len(s.bind))}
	for v, e := range s.bind {
		c.bind[v] = e
	}
	return c
}

// merge folds another branch's exit state into s, conservatively: the
// epoch advances if any branch hopped, and a variable's binding epoch is
// the oldest across branches (so a use is flagged if it is stale on any
// path).
func (s *hopState) merge(o *hopState) {
	if o.epoch > s.epoch {
		s.epoch = o.epoch
	}
	for v, e := range o.bind {
		if cur, ok := s.bind[v]; !ok || e < cur {
			s.bind[v] = e
		}
	}
}

type hopChecker struct {
	pass     *Pass
	reported map[string]bool
}

// isNodeType reports whether t is *navp.Node (or navp.Node).
func isNodeType(t types.Type) bool {
	return t != nil && namedIn(t, navpPath, "Node")
}

// isHopCall reports whether call is (*navp.Agent).Hop.
func (hc *hopChecker) isHopCall(call *ast.CallExpr) bool {
	f := funcFor(hc.pass.Pkg.Info, call)
	if !isPkgFunc(f, navpPath, "Hop") {
		return false
	}
	recv := f.Type().(*types.Signature).Recv()
	return recv != nil && namedIn(recv.Type(), navpPath, "Agent")
}

// walkBody analyzes a statement list, mutating st in place.
func (hc *hopChecker) walkBody(blk *ast.BlockStmt, st *hopState) {
	for _, stmt := range blk.List {
		hc.walkStmt(stmt, st)
	}
}

func (hc *hopChecker) walkStmt(stmt ast.Stmt, st *hopState) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			hc.walkExpr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v := hc.varOf(id); v != nil && isNodeType(v.Type()) {
					st.bind[v] = st.epoch
					continue
				}
			}
			hc.walkExpr(lhs, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					hc.walkExpr(val, st)
				}
				for _, name := range vs.Names {
					if v := hc.varOf(name); v != nil && isNodeType(v.Type()) {
						st.bind[v] = st.epoch
					}
				}
			}
		}
	case *ast.ExprStmt:
		hc.walkExpr(s.X, st)
	case *ast.IfStmt:
		if s.Init != nil {
			hc.walkStmt(s.Init, st)
		}
		hc.walkExpr(s.Cond, st)
		thenSt := st.clone()
		hc.walkBody(s.Body, thenSt)
		elseSt := st.clone()
		if s.Else != nil {
			hc.walkStmt(s.Else, elseSt)
		}
		*st = *thenSt
		st.merge(elseSt)
	case *ast.ForStmt:
		if s.Init != nil {
			hc.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			hc.walkExpr(s.Cond, st)
		}
		hc.walkLoopBody(s.Body, s.Post, st)
	case *ast.RangeStmt:
		hc.walkExpr(s.X, st)
		hc.walkLoopBody(s.Body, nil, st)
	case *ast.BlockStmt:
		hc.walkBody(s, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			hc.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			hc.walkExpr(s.Tag, st)
		}
		hc.walkBranches(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			hc.walkStmt(s.Init, st)
		}
		hc.walkStmt(s.Assign, st)
		hc.walkBranches(s.Body, st)
	case *ast.SelectStmt:
		hc.walkBranches(s.Body, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			hc.walkExpr(r, st)
		}
	case *ast.DeferStmt:
		hc.walkExpr(s.Call, st.clone())
	case *ast.GoStmt:
		hc.walkExpr(s.Call, st.clone())
	case *ast.SendStmt:
		hc.walkExpr(s.Chan, st)
		hc.walkExpr(s.Value, st)
	case *ast.IncDecStmt:
		hc.walkExpr(s.X, st)
	case *ast.LabeledStmt:
		hc.walkStmt(s.Stmt, st)
	}
}

// walkBranches analyzes each case clause against a copy of the entry
// state and merges the exits.
func (hc *hopChecker) walkBranches(body *ast.BlockStmt, st *hopState) {
	entry := st.clone()
	for _, c := range body.List {
		branch := entry.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				hc.walkExpr(e, branch)
			}
			for _, s := range cc.Body {
				hc.walkStmt(s, branch)
			}
		case *ast.CommClause:
			if cc.Comm != nil {
				hc.walkStmt(cc.Comm, branch)
			}
			for _, s := range cc.Body {
				hc.walkStmt(s, branch)
			}
		}
		st.merge(branch)
	}
}

// walkLoopBody analyzes a loop body; if the body (or post statement)
// performs a hop, it is walked a second time starting from the
// first pass's exit state, which catches node references bound outside
// the loop and used after the in-loop hop on iteration two.
func (hc *hopChecker) walkLoopBody(body *ast.BlockStmt, post ast.Stmt, st *hopState) {
	before := st.epoch
	walkOnce := func() {
		hc.walkBody(body, st)
		if post != nil {
			hc.walkStmt(post, st)
		}
	}
	walkOnce()
	if st.epoch > before {
		walkOnce()
	}
}

// walkExpr scans an expression in evaluation order: node-variable uses
// are checked against the current epoch, and Hop calls advance it.
func (hc *hopChecker) walkExpr(expr ast.Expr, st *hopState) {
	if expr == nil {
		return
	}
	switch e := expr.(type) {
	case *ast.Ident:
		hc.checkUse(e, st)
	case *ast.CallExpr:
		hc.walkExpr(e.Fun, st)
		for _, arg := range e.Args {
			hc.walkExpr(arg, st)
		}
		if hc.isHopCall(e) {
			st.epoch++
		} else if hc.pass.Facts != nil {
			// Interprocedural: a helper whose fact summary hops (directly
			// or transitively) invalidates captured node pointers just
			// like a literal Hop call at this site.
			if cs := hc.pass.Facts.CallSummary(hc.pass.Pkg.Info, e); cs != nil && cs.Hops {
				st.epoch++
			}
		}
	case *ast.FuncLit:
		// The literal may run later (Compute body, injected child): check
		// captured node references against the state at creation, but do
		// not let hops inside it advance the enclosing epoch.
		hc.walkBody(e.Body, st.clone())
	case *ast.SelectorExpr:
		hc.walkExpr(e.X, st)
	case *ast.IndexExpr:
		hc.walkExpr(e.X, st)
		hc.walkExpr(e.Index, st)
	case *ast.IndexListExpr:
		hc.walkExpr(e.X, st)
		for _, i := range e.Indices {
			hc.walkExpr(i, st)
		}
	case *ast.BinaryExpr:
		hc.walkExpr(e.X, st)
		hc.walkExpr(e.Y, st)
	case *ast.UnaryExpr:
		hc.walkExpr(e.X, st)
	case *ast.StarExpr:
		hc.walkExpr(e.X, st)
	case *ast.ParenExpr:
		hc.walkExpr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			hc.walkExpr(el, st)
		}
	case *ast.KeyValueExpr:
		hc.walkExpr(e.Key, st)
		hc.walkExpr(e.Value, st)
	case *ast.SliceExpr:
		hc.walkExpr(e.X, st)
		hc.walkExpr(e.Low, st)
		hc.walkExpr(e.High, st)
		hc.walkExpr(e.Max, st)
	case *ast.TypeAssertExpr:
		hc.walkExpr(e.X, st)
	}
}

// varOf resolves an identifier to the variable it names, or nil.
func (hc *hopChecker) varOf(id *ast.Ident) *types.Var {
	v, _ := hc.pass.ObjectOf(id).(*types.Var)
	return v
}

// checkUse reports a read of a node-typed variable bound in an earlier
// hop epoch.
func (hc *hopChecker) checkUse(id *ast.Ident, st *hopState) {
	v, _ := hc.pass.Pkg.Info.Uses[id].(*types.Var)
	if v == nil || !isNodeType(v.Type()) {
		return
	}
	bound, tracked := st.bind[v]
	if !tracked || bound >= st.epoch {
		return
	}
	key := hc.pass.Pkg.Fset.Position(id.Pos()).String() + "/" + v.Name()
	if hc.reported[key] {
		return
	}
	hc.reported[key] = true
	hc.pass.Reportf(id.Pos(),
		"node reference %q crosses a Hop: it was bound before the agent navigated and now "+
			"names a remote node; re-read it from ag.Node() after the hop (NavP locality rule)",
		v.Name())
}
