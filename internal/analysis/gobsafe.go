package analysis

import (
	"go/ast"
	"go/types"
)

// wirePath is the import path of the socket runtime.
const wirePath = "repro/internal/wire"

// NewGobSafe returns the gobsafe analyzer.
//
// The wire runtime checkpoints every agent's carried state as gob bytes
// at each hop boundary (DESIGN.md §8); recovery replays the agent from
// that snapshot. encoding/gob silently drops unexported struct fields
// and fails at runtime on chan- and func-typed exported fields — either
// way, a checkpoint replay restores less state than the agent carried,
// which is a silent correctness bug in exactly the code paths fault
// injection exercises. gobsafe walks every type that flows into a wire
// state sink (wire.RegisterState, Ctx.SetState, Ctx.Inject,
// Cluster.Inject, gob.Register, Encoder.Encode) and reports the fields
// gob would lose.
func NewGobSafe() *Analyzer {
	a := &Analyzer{
		Name: "gobsafe",
		Doc: "rejects unexported, chan-, and func-typed fields in types that " +
			"flow into gob-encoded agent state, which gob drops or refuses — " +
			"corrupting checkpoint replay",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				arg, sink := stateSinkArg(pass, call)
				if arg == nil {
					return true
				}
				t := pass.TypeOf(arg)
				if t == nil {
					return true
				}
				root := t
				if ptr, ok := root.(*types.Pointer); ok {
					root = ptr.Elem()
				}
				w := &gobWalker{
					pass: pass, pos: call, sink: sink,
					root: types.TypeString(root, types.RelativeTo(pass.Pkg.Types)),
					seen: map[*types.Named]bool{},
				}
				w.check(t, "")
				return true
			})
		}
	}
	return a
}

// stateSinkArg returns the expression whose value becomes gob-encoded
// agent state, if call is one of the known sinks.
func stateSinkArg(pass *Pass, call *ast.CallExpr) (ast.Expr, string) {
	fn := funcFor(pass.Pkg.Info, call)
	if fn == nil {
		return nil, ""
	}
	sig, _ := fn.Type().(*types.Signature)
	switch {
	case isPkgFunc(fn, wirePath, "RegisterState") && len(call.Args) == 1:
		return call.Args[0], "wire.RegisterState"
	case isPkgFunc(fn, wirePath, "SetState") && len(call.Args) == 1:
		return call.Args[0], "Ctx.SetState"
	case isPkgFunc(fn, wirePath, "Inject") && sig != nil && sig.Recv() != nil:
		if namedIn(sig.Recv().Type(), wirePath, "Ctx") && len(call.Args) == 2 {
			return call.Args[1], "Ctx.Inject"
		}
		if namedIn(sig.Recv().Type(), wirePath, "Cluster") && len(call.Args) == 3 {
			return call.Args[2], "Cluster.Inject"
		}
	case isPkgFunc(fn, "encoding/gob", "Register") && len(call.Args) == 1:
		return call.Args[0], "gob.Register"
	case isPkgFunc(fn, "encoding/gob", "Encode") && sig != nil && sig.Recv() != nil && len(call.Args) == 1:
		return call.Args[0], "gob.Encoder.Encode"
	}
	return nil, ""
}

// gobWalker recursively checks a type for fields gob would lose.
type gobWalker struct {
	pass *Pass
	pos  ast.Node
	sink string
	root string // display name of the state's root type
	seen map[*types.Named]bool
}

func (w *gobWalker) check(t types.Type, path string) {
	switch tt := t.(type) {
	case *types.Pointer:
		w.check(tt.Elem(), path)
	case *types.Slice:
		w.check(tt.Elem(), path+"[]")
	case *types.Array:
		w.check(tt.Elem(), path+"[]")
	case *types.Map:
		w.check(tt.Key(), path+"[key]")
		w.check(tt.Elem(), path+"[]")
	case *types.Named:
		if w.seen[tt] {
			return
		}
		w.seen[tt] = true
		if selfEncoding(tt) {
			return // the type serializes itself; gob's field rules don't apply
		}
		if st, ok := tt.Underlying().(*types.Struct); ok {
			w.checkStruct(st, path)
			return
		}
		w.check(tt.Underlying(), path)
	case *types.Struct:
		w.checkStruct(tt, path)
	case *types.Chan, *types.Signature:
		w.reportLossy(t, path, "gob cannot encode it")
	}
}

func (w *gobWalker) checkStruct(st *types.Struct, path string) {
	typeName := w.root
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fpath := f.Name()
		if path != "" {
			fpath = path + "." + f.Name()
		}
		if !f.Exported() {
			w.pass.Reportf(w.pos.Pos(),
				"state passed to %s: field %s of %s is unexported; encoding/gob silently "+
					"drops it, so a checkpoint replay would restore incomplete agent state "+
					"(export it, or move it out of the carried state)",
				w.sink, fpath, typeName)
			continue
		}
		switch f.Type().Underlying().(type) {
		case *types.Chan, *types.Signature:
			w.pass.Reportf(w.pos.Pos(),
				"state passed to %s: field %s of %s has type %s, which gob cannot encode; "+
					"the first checkpoint at a hop boundary would fail at runtime",
				w.sink, fpath, typeName, types.TypeString(f.Type(), types.RelativeTo(w.pass.Pkg.Types)))
		default:
			w.check(f.Type(), fpath)
		}
	}
}

func (w *gobWalker) reportLossy(t types.Type, path, why string) {
	at := path
	if at == "" {
		at = "value"
	}
	w.pass.Reportf(w.pos.Pos(), "state passed to %s: %s has type %s but %s",
		w.sink, at, types.TypeString(t, types.RelativeTo(w.pass.Pkg.Types)), why)
}

// selfEncoding reports whether the named type (or its pointer) provides
// its own gob/binary encoding, exempting it from field-level rules
// (e.g. time.Time).
func selfEncoding(named *types.Named) bool {
	for _, name := range []string{"GobEncode", "MarshalBinary"} {
		if hasMethod(named, name) {
			return true
		}
	}
	return false
}

func hasMethod(named *types.Named, name string) bool {
	for _, t := range []types.Type{named, types.NewPointer(named)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == name {
				return true
			}
		}
	}
	return false
}
