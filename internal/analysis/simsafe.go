package analysis

import (
	"go/ast"
	"go/types"
)

// isPackageLevel reports whether fn is a package-level function (not a
// method).
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// wallClockFuncs are the time functions that read or wait on the wall
// clock. time.ParseDuration, constants, and arithmetic stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "Since": true, "Until": true,
}

// globalRandFuncs are the math/rand package-level draws that consult the
// shared, unseeded global source. Constructing an explicit seeded
// source (rand.New, rand.NewSource) stays legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

// NewSimSafe returns the simsafe analyzer.
//
// The simulation domain's contract is bit-reproducibility: the same
// seed must replay the same virtual-time schedule, byte for byte, or
// the paper's tables (and the chaos suites' golden traces) cannot be
// regenerated. Three things silently break that contract — reading the
// wall clock, drawing from the global math/rand source, and spawning
// goroutines outside the sim kernel's deterministic scheduler — and
// simsafe forbids all three in sim-domain packages. Real-backend files
// that legitimately touch wall time declare themselves with
// //navplint:exempt simsafe.
func NewSimSafe() *Analyzer {
	a := &Analyzer{
		Name: "simsafe",
		Doc: "forbids wall-clock time, global math/rand, and bare go statements " +
			"in simulation-domain code, where only virtual time and seeded " +
			"sources keep runs bit-reproducible",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(node.Pos(),
						"bare go statement in sim-domain code: goroutines outside the sim "+
							"kernel's scheduler make virtual-time ordering nondeterministic; "+
							"run concurrent work as sim processes instead")
				case *ast.CallExpr:
					fn := funcFor(pass.Pkg.Info, node)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					// Package-level functions only: methods on *rand.Rand or
					// time.Time values are deterministic given their inputs.
					switch fn.Pkg().Path() {
					case "time":
						if wallClockFuncs[fn.Name()] && isPackageLevel(fn) {
							pass.Reportf(node.Pos(),
								"time.%s reads the wall clock in sim-domain code; use the "+
									"kernel's virtual clock (sim.Proc.Now/Sleep) so runs stay "+
									"bit-reproducible", fn.Name())
						}
					case "math/rand", "math/rand/v2":
						if globalRandFuncs[fn.Name()] && isPackageLevel(fn) {
							pass.Reportf(node.Pos(),
								"rand.%s draws from the global math/rand source in sim-domain "+
									"code; inject a seeded *rand.Rand so data generation is "+
									"reproducible", fn.Name())
						}
					}
				}
				return true
			})
		}
	}
	return a
}
