package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// suppressIndex holds a package's suppression comments:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>  — suppresses the
//	    named analyzers on the comment's own line and the next line;
//	//navplint:exempt <analyzer>|all                   — suppresses the
//	    analyzer (or everything) for the whole file.
type suppressIndex struct {
	// line["file:line"] → analyzer names suppressed there ("all" wildcard).
	line map[string]map[string]bool
	// file[filename] → analyzer names exempted file-wide.
	file map[string]map[string]bool
	// malformed ignore directives are themselves findings.
	malformed []Diagnostic
}

func newSuppressIndex(pkg *Package) *suppressIndex {
	idx := &suppressIndex{
		line: map[string]map[string]bool{},
		file: map[string]map[string]bool{},
	}
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx.addComment(pkg.Fset, filename, c)
			}
		}
	}
	return idx
}

func (idx *suppressIndex) addComment(fset *token.FileSet, filename string, c *ast.Comment) {
	text := strings.TrimPrefix(c.Text, "//")
	switch {
	case strings.HasPrefix(text, "lint:ignore"):
		rest := strings.TrimPrefix(text, "lint:ignore")
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			idx.malformed = append(idx.malformed, Diagnostic{
				Analyzer: "navplint",
				Pos:      fset.Position(c.Pos()),
				Message:  "malformed lint:ignore: need an analyzer name and a reason",
			})
			return
		}
		line := fset.Position(c.Pos()).Line
		for _, name := range strings.Split(fields[0], ",") {
			idx.addLine(filename, line, name)
			idx.addLine(filename, line+1, name)
		}
	case strings.HasPrefix(text, "navplint:exempt"):
		rest := strings.TrimSpace(strings.TrimPrefix(text, "navplint:exempt"))
		if rest == "" {
			idx.malformed = append(idx.malformed, Diagnostic{
				Analyzer: "navplint",
				Pos:      fset.Position(c.Pos()),
				Message:  "malformed navplint:exempt: name an analyzer or \"all\"",
			})
			return
		}
		for _, name := range strings.Fields(rest) {
			if idx.file[filename] == nil {
				idx.file[filename] = map[string]bool{}
			}
			idx.file[filename][name] = true
		}
	}
}

func (idx *suppressIndex) addLine(filename string, line int, name string) {
	key := lineKey(filename, line)
	if idx.line[key] == nil {
		idx.line[key] = map[string]bool{}
	}
	idx.line[key][name] = true
}

func lineKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

// suppressed reports whether d is silenced by an ignore or exempt
// directive.
func (idx *suppressIndex) suppressed(d Diagnostic) bool {
	if d.Analyzer == "navplint" {
		return false // directives about directives are never suppressed
	}
	if names := idx.file[d.Pos.Filename]; names != nil && (names[d.Analyzer] || names["all"]) {
		return true
	}
	if names := idx.line[lineKey(d.Pos.Filename, d.Pos.Line)]; names != nil && (names[d.Analyzer] || names["all"]) {
		return true
	}
	return false
}
