// Package facts is the interprocedural layer of the navplint analysis
// platform: a call graph over go/types plus per-function summaries
// ("may block", "may externalize an effect", "syncs the persister",
// "acquires which mutexes", "hops", "releases a job namespace"),
// computed to a fixpoint over every loaded package.
//
// The analyzers in internal/analysis consume these summaries to prove
// whole-program invariants a single function body cannot show: that
// every path externalizing a durable mutation's effect was dominated by
// a persister sync, that the static lock graph is acyclic and no mutex
// is held across an indefinite wait, that every minted job namespace is
// released on every exit path, and that a *navp.Node reference does not
// survive a hop hidden inside a helper.
//
// Leaf semantics the type system cannot express are declared in source
// with one doc-comment line:
//
//	//navplint:fact durable      — mutates node-durable state
//	//navplint:fact sync         — syncs the persister (dominates exit)
//	//navplint:fact mint         — mints a job namespace to be released
//	//navplint:fact handoff      — transfers a namespace's release
//	                               obligation to another owner (reaper,
//	                               migration destination)
//	//navplint:fact externalize | blocking | hop | release
//
// Everything else is structural: channel operations, selects without
// default, net.Conn I/O and dials, sync.{Mutex,RWMutex,WaitGroup,Cond}
// calls, (*navp.Agent).Hop, and methods named ReleaseJob or
// ClearVarsPrefix.
package facts

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// Finding codes recorded on summaries during the reporting pass.
const (
	// FindExternUnsynced: an externalizing call while a durable mutation
	// is definitely unsynced on this path.
	FindExternUnsynced = "extern-unsynced"
	// FindBlockHeld: a mutex held across an indefinitely-blocking
	// operation.
	FindBlockHeld = "block-held"
	// FindReacquire: a mutex acquired while the same lock is already
	// held on this path (Go mutexes are not reentrant).
	FindReacquire = "reacquire"
	// FindExitHeld: a path returns while still holding a mutex with no
	// deferred release.
	FindExitHeld = "exit-held"
	// FindLeak: a minted job namespace has an exit path with no
	// ReleaseJob/ClearVarsPrefix.
	FindLeak = "leak"
)

// Finding is one violation site recorded by the fact engine, reported
// by the analyzer that owns its code.
type Finding struct {
	Pos    token.Pos
	Code   string
	Detail string
}

// LockEdge is one ordered acquisition: To was acquired while From was
// held (directly or through a callee's Acquires summary).
type LockEdge struct {
	From, To string
	Pos      token.Pos
}

// Summary is the interprocedural fact set for one function or function
// literal.
type Summary struct {
	Fn   *types.Func // nil for literals
	Pkg  *load.Package
	Name string // display name ("(*daemon).handle", "(*daemon).handle·lit")
	Pos  token.Pos

	// Transitive may-facts.
	MayBlock       bool // may block indefinitely (chan op, conn I/O, dial, sleep, Wait)
	Hops           bool // may perform an agent hop
	Externalizes   bool // may make an effect visible to a remote party
	Syncs          bool // may sync the persister
	Releases       bool // may release a job namespace
	Hands          bool // may transfer a namespace's release obligation to another owner
	MutatesDurable bool // may mutate node-durable state

	// Ordered persist/externalize facts (the syncorder lattice).
	DirtyAtExit          bool // some exit path carries an unsynced durable mutation
	CleansAtExit         bool // every exit path ends with the persister synced
	ExternalizesUnsynced bool // some path externalizes before its first sync

	// Mints is annotation-only and deliberately not transitive: a direct
	// call to a mint function starts an obligation in the caller.
	Mints bool

	// Acquires is the set of lock IDs transitively acquired.
	Acquires map[string]bool

	// Findings and LockEdges are populated by the final reporting pass.
	Findings  []Finding
	LockEdges []LockEdge

	ann Annotation
}

// unit is one walkable body.
type unit struct {
	pkg  *load.Package
	fn   *types.Func // nil for literals
	lit  *ast.FuncLit
	body *ast.BlockStmt
	name string
}

// Set holds the computed facts for a group of packages.
type Set struct {
	fns      map[*types.Func]*Summary
	lits     map[*ast.FuncLit]*Summary
	bindings map[*types.Var]*ast.FuncLit // single-assignment local/package func-lit bindings
	units    []*unit
	byPkg    map[string][]*Summary
}

// Analyze computes the call graph and per-function summaries for the
// packages, iterating to a fixpoint so facts flow through arbitrarily
// deep call chains (bounded: the lattice is finite and near-monotone; a
// small iteration cap guards the CleansAtExit/DirtyAtExit interplay).
func Analyze(pkgs []*load.Package) *Set {
	s := &Set{
		fns:      map[*types.Func]*Summary{},
		lits:     map[*ast.FuncLit]*Summary{},
		bindings: map[*types.Var]*ast.FuncLit{},
		byPkg:    map[string][]*Summary{},
	}
	for _, pkg := range pkgs {
		s.collect(pkg)
	}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, u := range s.units {
			next := s.compute(u, nil)
			if !summariesEqual(s.summaryOf(u), next) {
				s.install(u, next)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting pass: summaries are final; record violation sites.
	for _, u := range s.units {
		final := s.summaryOf(u)
		rec := &recorder{}
		s.compute(u, rec)
		final.Findings = rec.findings
		final.LockEdges = rec.edges
	}
	return s
}

// collect registers every function declaration and literal of a package
// as a walk unit, parses annotations, and gathers single-assignment
// function-literal bindings (`reply := func(...) {...}`) so calls
// through them resolve.
func (s *Set) collect(pkg *load.Package) {
	addUnit := func(u *unit, ann Annotation) {
		sum := &Summary{
			Fn: u.fn, Pkg: pkg, Name: u.name, Pos: u.body.Pos(),
			Acquires: map[string]bool{}, ann: ann,
		}
		applyAnnotation(sum)
		if u.fn != nil {
			s.fns[u.fn] = sum
		} else {
			s.lits[u.lit] = sum
		}
		s.units = append(s.units, u)
		s.byPkg[pkg.Path] = append(s.byPkg[pkg.Path], sum)
	}
	assigns := map[*types.Var]int{}
	litFor := map[*types.Var]*ast.FuncLit{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ann, _ := parseAnnotation(fd.Doc)
			name := fn.Name()
			if recv := recvNamed(fn); recv != nil {
				name = "(*" + recv.Obj().Name() + ")." + name
			}
			u := &unit{pkg: pkg, fn: fn, body: fd.Body, name: name}
			addUnit(u, ann)
			// Literals nested in this declaration.
			encl := name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					addUnit(&unit{pkg: pkg, lit: lit, body: lit.Body, name: encl + "·lit"}, Annotation{})
				}
				return true
			})
		}
		// Bindings and assignment counts (whole file, incl. package-level
		// var initializers).
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					v := varObj(pkg.Info, id)
					if v == nil {
						continue
					}
					assigns[v]++
					if len(st.Lhs) == len(st.Rhs) {
						if lit, ok := ast.Unparen(st.Rhs[i]).(*ast.FuncLit); ok {
							litFor[v] = lit
						}
					}
				}
			case *ast.ValueSpec:
				for i, nameID := range st.Names {
					v := varObj(pkg.Info, nameID)
					if v == nil {
						continue
					}
					assigns[v]++
					if i < len(st.Values) {
						if lit, ok := ast.Unparen(st.Values[i]).(*ast.FuncLit); ok {
							litFor[v] = lit
						}
					}
				}
			}
			return true
		})
	}
	for v, lit := range litFor {
		if assigns[v] == 1 {
			s.bindings[v] = lit
		}
	}
	// Package-level literals outside function declarations (var inits)
	// still need walk units.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					addUnit(&unit{pkg: pkg, lit: lit, body: lit.Body, name: "pkg·lit"}, Annotation{})
				}
				return true
			})
		}
	}
}

func varObj(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func applyAnnotation(sum *Summary) {
	a := sum.ann
	if a.Durable {
		sum.MutatesDurable, sum.DirtyAtExit = true, true
	}
	if a.Sync {
		sum.Syncs, sum.CleansAtExit = true, true
	}
	if a.Externalize {
		sum.Externalizes, sum.ExternalizesUnsynced = true, true
	}
	if a.Blocking {
		sum.MayBlock = true
	}
	if a.Hop {
		sum.Hops = true
	}
	if a.Release {
		sum.Releases = true
	}
	if a.Handoff {
		sum.Hands = true
	}
	if a.Mint {
		sum.Mints = true
	}
}

func (s *Set) summaryOf(u *unit) *Summary {
	if u.fn != nil {
		return s.fns[u.fn]
	}
	return s.lits[u.lit]
}

func (s *Set) install(u *unit, next *Summary) {
	cur := s.summaryOf(u)
	cur.MayBlock, cur.Hops, cur.Externalizes = next.MayBlock, next.Hops, next.Externalizes
	cur.Syncs, cur.Releases, cur.MutatesDurable = next.Syncs, next.Releases, next.MutatesDurable
	cur.Hands = next.Hands
	cur.DirtyAtExit, cur.CleansAtExit = next.DirtyAtExit, next.CleansAtExit
	cur.ExternalizesUnsynced = next.ExternalizesUnsynced
	cur.Acquires = next.Acquires
	applyAnnotation(cur) // annotation bits are sticky
}

func summariesEqual(a, b *Summary) bool {
	if a.MayBlock != b.MayBlock || a.Hops != b.Hops || a.Externalizes != b.Externalizes ||
		a.Syncs != b.Syncs || a.Releases != b.Releases || a.Hands != b.Hands ||
		a.MutatesDurable != b.MutatesDurable ||
		a.DirtyAtExit != b.DirtyAtExit || a.CleansAtExit != b.CleansAtExit ||
		a.ExternalizesUnsynced != b.ExternalizesUnsynced {
		return false
	}
	if len(a.Acquires) != len(b.Acquires) {
		return false
	}
	for id := range b.Acquires {
		if !a.Acquires[id] {
			return false
		}
	}
	return true
}

// FuncSummary returns the summary for a declared function, or nil.
func (s *Set) FuncSummary(fn *types.Func) *Summary { return s.fns[fn] }

// CallSummary resolves a call site to its callee's summary: a declared
// function or method of the analyzed packages, a directly-invoked
// function literal, or a literal reached through a single-assignment
// variable binding. Nil means the callee is outside the analyzed set
// (stdlib, interface method, dynamic function value).
func (s *Set) CallSummary(info *types.Info, call *ast.CallExpr) *Summary {
	if fn := Callee(info, call); fn != nil {
		return s.fns[fn]
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return s.lits[fun]
	case *ast.Ident:
		if v, ok := info.Uses[fun].(*types.Var); ok {
			if lit, ok := s.bindings[v]; ok {
				return s.lits[lit]
			}
		}
	}
	return nil
}

// Edges returns every lock-graph edge discovered across the analyzed
// set — the union lock graph cycle detection runs over.
func (s *Set) Edges() []LockEdge {
	var out []LockEdge
	for _, u := range s.units {
		out = append(out, s.summaryOf(u).LockEdges...)
	}
	return out
}

// PackageSummaries lists the summaries of every function and literal
// declared in the package, in source order.
func (s *Set) PackageSummaries(pkgPath string) []*Summary {
	out := append([]*Summary(nil), s.byPkg[pkgPath]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// sigma is the syncorder lattice: how "dirty" the persister image is
// relative to acknowledged state on the current path.
const (
	sigClean     = 0 // a sync dominates: everything mutated so far is on disk
	sigInherited = 1 // no information: whatever the caller's state was
	sigDirty     = 2 // a durable mutation is definitely unsynced
)

// heldLock is one acquisition on the current path.
type heldLock struct {
	pos  token.Pos
	read bool
}

// flowState is the combined abstract state for the fact walk.
type flowState struct {
	sigma       int
	held        map[string]heldLock
	deferred    map[string]bool
	obligations map[obKey]token.Pos
}

// obKey keys a pending namespace obligation: by the variable the minted
// namespace was assigned to, or by mint position when unbound.
type obKey struct {
	v   *types.Var
	pos token.Pos
}

func newFlowState() *flowState {
	return &flowState{
		sigma:       sigInherited,
		held:        map[string]heldLock{},
		deferred:    map[string]bool{},
		obligations: map[obKey]token.Pos{},
	}
}

func (f *flowState) Fork() State {
	c := &flowState{
		sigma:       f.sigma,
		held:        make(map[string]heldLock, len(f.held)),
		deferred:    make(map[string]bool, len(f.deferred)),
		obligations: make(map[obKey]token.Pos, len(f.obligations)),
	}
	for k, v := range f.held {
		c.held[k] = v
	}
	for k, v := range f.deferred {
		c.deferred[k] = v
	}
	for k, v := range f.obligations {
		c.obligations[k] = v
	}
	return c
}

func (f *flowState) Join(o State) {
	x := o.(*flowState)
	if x.sigma > f.sigma {
		f.sigma = x.sigma // dirtier wins
	}
	for k, v := range x.held { // held on any path counts
		if _, ok := f.held[k]; !ok {
			f.held[k] = v
		}
	}
	for k := range f.deferred { // deferred only if deferred on all paths
		if !x.deferred[k] {
			delete(f.deferred, k)
		}
	}
	for k, v := range x.obligations { // pending on any path counts
		if _, ok := f.obligations[k]; !ok {
			f.obligations[k] = v
		}
	}
}

func (f *flowState) Replace(o State) {
	x := o.(*flowState)
	f.sigma, f.held, f.deferred, f.obligations = x.sigma, x.held, x.deferred, x.obligations
}

// recorder collects violation sites during the reporting pass; nil
// during fixpoint iteration.
type recorder struct {
	findings []Finding
	edges    []LockEdge
	seen     map[string]bool
}

func (r *recorder) add(pos token.Pos, code, detail string) {
	if r == nil {
		return
	}
	if r.seen == nil {
		r.seen = map[string]bool{}
	}
	key := code + "@" + detail + "@" + posKey(pos)
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.findings = append(r.findings, Finding{Pos: pos, Code: code, Detail: detail})
}

func posKey(p token.Pos) string {
	// token.Pos is an int offset; format without strconv import noise.
	b := [20]byte{}
	i := len(b)
	n := int(p)
	if n == 0 {
		return "0"
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// compute walks one unit and returns its summary; when rec is non-nil
// it also records violation sites and lock edges (the reporting pass).
func (s *Set) compute(u *unit, rec *recorder) *Summary {
	info := u.pkg.Info
	out := &Summary{
		Fn: u.fn, Pkg: u.pkg, Name: u.name, Pos: u.body.Pos(),
		Acquires: map[string]bool{}, ann: s.summaryOf(u).ann,
	}
	allClean := true
	sawExit := false

	heldNames := func(st *flowState) string {
		names := make([]string, 0, len(st.held))
		for id := range st.held {
			names = append(names, shortLock(id))
		}
		sort.Strings(names)
		return strings.Join(names, ", ")
	}

	w := &Walker{Info: info}
	w.Hooks = Hooks{
		Call: func(call *ast.CallExpr, kind CallKind, st State) {
			f := st.(*flowState)
			fn := Callee(info, call)
			cs := s.CallSummary(info, call)

			// Mutex operations.
			if op := lockIntrinsic(fn); op != LockNone {
				id := lockID(info, call, u.name)
				if id == "" {
					return
				}
				switch kind {
				case CallDefer:
					if op == LockRelease || op == LockReleaseRead {
						f.deferred[id] = true
					}
					return
				case CallGo:
					return
				}
				switch op {
				case LockAcquire, LockAcquireRead:
					if prev, ok := f.held[id]; ok && !(op == LockAcquireRead && prev.read) {
						rec.add(call.Pos(), FindReacquire, shortLock(id))
					}
					for from := range f.held {
						if rec != nil && from != id {
							rec.edges = append(rec.edges, LockEdge{From: from, To: id, Pos: call.Pos()})
						}
					}
					f.held[id] = heldLock{pos: call.Pos(), read: op == LockAcquireRead}
					out.Acquires[id] = true
				case LockRelease, LockReleaseRead:
					delete(f.held, id)
				}
				return
			}
			if kind != CallNormal {
				// go f() does not block or mutate this goroutine's path;
				// defer f() runs at exit with its own walked body.
				return
			}

			// Blocking.
			bk := blockingIntrinsic(fn)
			if bk == BlockNone && cs != nil && cs.MayBlock {
				bk = BlockHard
			}
			switch bk {
			case BlockSoft:
				// sync.Cond.Wait releases its own mutex: MayBlock for
				// callers, but the direct call is the idiom, not a bug.
				out.MayBlock = true
			case BlockHard:
				out.MayBlock = true
				if len(f.held) > 0 {
					rec.add(call.Pos(), FindBlockHeld, heldNames(f)+" across "+callName(fn, cs))
				}
			}

			// Lock edges through callee acquisitions.
			if cs != nil && len(cs.Acquires) > 0 {
				for to := range cs.Acquires {
					out.Acquires[to] = true
					if _, ok := f.held[to]; ok && !f.held[to].read {
						rec.add(call.Pos(), FindReacquire, shortLock(to)+" (via "+cs.Name+")")
					}
					for from := range f.held {
						if rec != nil && from != to {
							rec.edges = append(rec.edges, LockEdge{From: from, To: to, Pos: call.Pos()})
						}
					}
				}
			}

			// Hops.
			if hopIntrinsic(fn) || (cs != nil && cs.Hops) {
				out.Hops = true
			}

			// Externalization under the sync lattice.
			extern := externalizeIntrinsic(fn)
			externUnsynced := extern
			if cs != nil && cs.Externalizes {
				extern = true
				externUnsynced = externUnsynced || cs.ExternalizesUnsynced
			}
			if extern {
				out.Externalizes = true
				if externUnsynced {
					if f.sigma >= sigInherited {
						out.ExternalizesUnsynced = true
					}
					if f.sigma == sigDirty {
						rec.add(call.Pos(), FindExternUnsynced, callName(fn, cs))
					}
				}
			}

			// Namespace obligations. A hand-off clears like a release —
			// the obligation is transferred to its new owner (background
			// reaper, migration destination), not discharged — and the
			// new owner's own exit paths are checked separately.
			if releaseIntrinsic(fn) || (cs != nil && cs.Releases) {
				out.Releases = true
				clearObligations(info, f, call)
			}
			if cs != nil && cs.Hands {
				out.Hands = true
				clearObligations(info, f, call)
			}
			if cs != nil && cs.Mints {
				f.obligations[obKey{pos: call.Pos()}] = call.Pos()
			}

			// Sync lattice transfer, after the externalize check so a
			// send-then-sync callee still reports.
			if cs != nil {
				if cs.Syncs {
					out.Syncs = true
				}
				if cs.MutatesDurable {
					out.MutatesDurable = true
				}
				switch {
				case cs.DirtyAtExit:
					f.sigma = sigDirty
				case cs.CleansAtExit:
					f.sigma = sigClean
				}
			}
		},
		Block: func(n ast.Node, st State) {
			f := st.(*flowState)
			out.MayBlock = true
			if len(f.held) > 0 {
				rec.add(n.Pos(), FindBlockHeld, heldNames(f)+" across "+blockDesc(n))
			}
		},
		Assign: func(as *ast.AssignStmt, st State) {
			f := st.(*flowState)
			// Re-key a freshly-minted namespace to the variable it was
			// assigned to, so releases naming that variable clear it.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return
			}
			cs := s.CallSummary(info, call)
			if cs == nil || !cs.Mints {
				return
			}
			id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return
			}
			v := varObj(info, id)
			if v == nil {
				return
			}
			delete(f.obligations, obKey{pos: call.Pos()})
			f.obligations[obKey{v: v}] = call.Pos()
		},
		Exit: func(n ast.Node, st State) {
			f := st.(*flowState)
			sawExit = true
			if f.sigma == sigDirty {
				out.DirtyAtExit = true
			}
			if f.sigma != sigClean {
				allClean = false
			}
			for id, h := range f.held {
				if !f.deferred[id] {
					rec.add(h.pos, FindExitHeld, shortLock(id))
				}
			}
			for _, pos := range f.obligations {
				rec.add(pos, FindLeak, "")
			}
		},
	}
	w.Walk(u.body, newFlowState())
	out.CleansAtExit = sawExit && allClean
	applyAnnotation(out)
	return out
}

// clearObligations removes every obligation whose bound variable appears
// (at any depth) in the releasing call's arguments or receiver, plus all
// position-keyed (unbound) obligations — a release you cannot tie to a
// specific namespace is credited to any pending anonymous mint.
func clearObligations(info *types.Info, f *flowState, call *ast.CallExpr) {
	argVars := map[*types.Var]bool{}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					argVars[v] = true
				}
			}
			return true
		})
	}
	for k := range f.obligations {
		if k.v == nil || argVars[k.v] {
			delete(f.obligations, k)
		}
	}
}

// shortLock trims a lock ID to its last two path-free components for
// readable diagnostics: "repro/internal/wire.daemon.linkMu" →
// "daemon.linkMu".
func shortLock(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		id = id[i+1:]
	}
	if i := strings.IndexByte(id, '.'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// callName renders a callee for diagnostics.
func callName(fn *types.Func, cs *Summary) string {
	switch {
	case cs != nil:
		return cs.Name
	case fn != nil:
		if recv := recvNamed(fn); recv != nil {
			return "(" + recv.Obj().Name() + ")." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}

// blockDesc names a structural blocking point.
func blockDesc(n ast.Node) string {
	switch n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		return "channel receive"
	case *ast.SelectStmt:
		return "blocking select"
	case *ast.RangeStmt:
		return "range over channel"
	}
	return "blocking operation"
}
