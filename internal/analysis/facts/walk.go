package facts

import (
	"go/ast"
	"go/types"
)

// The flow walker evaluates a function body in execution order with
// branch forking and conservative joins — the same discipline as
// hopcheck's hand-rolled walker, generalized over an analyzer-owned
// abstract state. It is the engine under the interprocedural summaries
// (sync ordering, held-lock sets, namespace obligations).
//
// Precision contract:
//
//   - each branch of an if/switch/select is walked against a fork of the
//     entry state, and only branches that do not end in `return` (or
//     panic/os.Exit) are joined back;
//   - a construct that can be skipped entirely (if without else, switch
//     without default, loops) also joins the entry state;
//   - loop bodies are walked twice, so state created on iteration one is
//     observed by iteration two (a lock acquired late in the body is
//     "held" at the body's top on the second pass);
//   - `break`, `continue`, and `goto` are treated as falling through,
//     which over-approximates the path set — sound for the union-style
//     joins every client uses;
//   - function literals are not descended into here: they are walk units
//     of their own (see Analyze), and their effects apply at resolved
//     call sites only.

// State is an analyzer-owned abstract state for one walk.
type State interface {
	// Fork returns an independent copy for a branch.
	Fork() State
	// Join folds another branch's exit state into the receiver,
	// conservatively.
	Join(State)
	// Replace overwrites the receiver's contents with another state's
	// (used when only one branch of a construct continues).
	Replace(State)
}

// CallKind distinguishes how a call site runs its callee.
type CallKind int

const (
	CallNormal CallKind = iota
	CallGo              // `go f()` — runs on another goroutine
	CallDefer           // `defer f()` — runs at function exit
)

// Hooks are the walker's client callbacks. Any may be nil.
type Hooks struct {
	// Call fires for every call expression after its arguments were
	// walked, with the state at the call.
	Call func(call *ast.CallExpr, kind CallKind, st State)
	// Block fires at structural blocking points: channel send/receive,
	// select without a default clause, range over a channel.
	Block func(n ast.Node, st State)
	// Assign fires after an assignment's right-hand side was walked and
	// before the statement completes (for binding call results to
	// variables).
	Assign func(s *ast.AssignStmt, st State)
	// Exit fires at every return statement and once at the fall-off end
	// of the body.
	Exit func(n ast.Node, st State)
	// FuncLit fires when a literal appears in expression position; the
	// literal body is not walked.
	FuncLit func(lit *ast.FuncLit, st State)
}

// Walker drives one function body.
type Walker struct {
	Info  *types.Info
	Hooks Hooks
}

// Walk runs the body against the entry state, firing hooks. The final
// state (all non-returning paths joined) is left in st.
func (w *Walker) Walk(body *ast.BlockStmt, st State) {
	if terminated := w.walkBody(body, st); !terminated {
		if w.Hooks.Exit != nil {
			w.Hooks.Exit(body, st)
		}
	}
}

// walkBody walks a statement list, mutating st; it reports whether the
// list definitely terminates (ends the function) on every path.
func (w *Walker) walkBody(blk *ast.BlockStmt, st State) bool {
	return w.walkList(blk.List, st)
}

func (w *Walker) walkList(list []ast.Stmt, st State) bool {
	for _, stmt := range list {
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

// walkStmt walks one statement; true means the statement terminates the
// function on every path through it.
func (w *Walker) walkStmt(stmt ast.Stmt, st State) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.walkExpr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				w.walkExpr(lhs, st)
			}
		}
		if w.Hooks.Assign != nil {
			w.Hooks.Assign(s, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.walkExpr(val, st)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X, st)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && w.terminates(call) {
			return true
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkExpr(s.Cond, st)
		thenSt := st.Fork()
		thenTerm := w.walkBody(s.Body, thenSt)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, st)
		}
		if thenTerm && elseTerm {
			return true
		}
		if !thenTerm {
			if elseTerm {
				// Only the then-branch continues: adopt its state.
				w.copyInto(st, thenSt)
			} else {
				st.Join(thenSt)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, st)
		}
		w.walkLoop(s.Body, s.Post, st)
	case *ast.RangeStmt:
		w.walkExpr(s.X, st)
		if t := w.Info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && w.Hooks.Block != nil {
				w.Hooks.Block(s, st)
			}
		}
		w.walkLoop(s.Body, nil, st)
	case *ast.BlockStmt:
		return w.walkBody(s, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, st)
		}
		return w.walkBranches(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkStmt(s.Assign, st)
		return w.walkBranches(s.Body, st, false)
	case *ast.SelectStmt:
		if w.Hooks.Block != nil && !selectHasDefault(s) {
			w.Hooks.Block(s, st)
		}
		return w.walkBranches(s.Body, st, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r, st)
		}
		if w.Hooks.Exit != nil {
			w.Hooks.Exit(s, st)
		}
		return true
	case *ast.DeferStmt:
		w.walkCallParts(s.Call, st)
		if w.Hooks.Call != nil {
			w.Hooks.Call(s.Call, CallDefer, st)
		}
	case *ast.GoStmt:
		w.walkCallParts(s.Call, st)
		if w.Hooks.Call != nil {
			w.Hooks.Call(s.Call, CallGo, st)
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan, st)
		w.walkExpr(s.Value, st)
		if w.Hooks.Block != nil {
			w.Hooks.Block(s, st)
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	}
	return false
}

// walkBranches walks each case clause against a fork of the entry state
// and joins the non-terminating exits. exhaustive means one clause is
// always taken (select); a switch is exhaustive only with a default
// clause.
func (w *Walker) walkBranches(body *ast.BlockStmt, st State, exhaustive bool) bool {
	var exits []State
	hasDefault := false
	for _, c := range body.List {
		branch := st.Fork()
		term := false
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.walkExpr(e, branch)
			}
			term = w.walkList(cc.Body, branch)
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(cc.Comm, branch)
			}
			term = w.walkList(cc.Body, branch)
		}
		if !term {
			exits = append(exits, branch)
		}
	}
	skippable := !exhaustive && !hasDefault
	if len(exits) == 0 {
		// Every taken branch returns; the construct terminates unless it
		// can be skipped entirely.
		return !skippable && len(body.List) > 0
	}
	if !skippable {
		w.copyInto(st, exits[0])
		exits = exits[1:]
	}
	for _, e := range exits {
		st.Join(e)
	}
	return false
}

// walkLoop walks a loop body twice (so first-iteration state reaches the
// body top) and joins the zero-iteration entry state with both exits.
func (w *Walker) walkLoop(body *ast.BlockStmt, post ast.Stmt, st State) {
	exit := st.Fork() // zero iterations
	for i := 0; i < 2; i++ {
		if w.walkBody(body, st) {
			break
		}
		if post != nil {
			w.walkStmt(post, st)
		}
		exit.Join(st)
	}
	w.copyInto(st, exit)
}

func (w *Walker) copyInto(dst, src State) { dst.Replace(src) }

// walkCallParts walks a call's function and argument expressions without
// firing the Call hook (used for go/defer where the hook fires with a
// kind).
func (w *Walker) walkCallParts(call *ast.CallExpr, st State) {
	w.walkExprNoHook(call.Fun, st)
	for _, arg := range call.Args {
		w.walkExpr(arg, st)
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// terminates reports whether a call never returns: panic, os.Exit,
// runtime.Goexit.
func (w *Walker) terminates(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isb := w.Info.Uses[id].(*types.Builtin); isb && b.Name() == "panic" {
			return true
		}
	}
	fn := Callee(w.Info, call)
	return IsPkgFunc(fn, "os", "Exit") || IsPkgFunc(fn, "runtime", "Goexit")
}

// walkExpr walks an expression in evaluation order, firing hooks.
func (w *Walker) walkExpr(expr ast.Expr, st State) {
	w.walkExprInner(expr, st, true)
}

func (w *Walker) walkExprNoHook(expr ast.Expr, st State) {
	w.walkExprInner(expr, st, false)
}

func (w *Walker) walkExprInner(expr ast.Expr, st State, hook bool) {
	if expr == nil {
		return
	}
	switch e := expr.(type) {
	case *ast.CallExpr:
		w.walkExprInner(e.Fun, st, hook)
		for _, arg := range e.Args {
			w.walkExpr(arg, st)
		}
		if hook && w.Hooks.Call != nil {
			w.Hooks.Call(e, CallNormal, st)
		}
	case *ast.FuncLit:
		if w.Hooks.FuncLit != nil {
			w.Hooks.FuncLit(e, st)
		}
	case *ast.UnaryExpr:
		w.walkExpr(e.X, st)
		if e.Op.String() == "<-" && w.Hooks.Block != nil {
			w.Hooks.Block(e, st)
		}
	case *ast.SelectorExpr:
		w.walkExpr(e.X, st)
	case *ast.IndexExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Index, st)
	case *ast.IndexListExpr:
		w.walkExpr(e.X, st)
		for _, i := range e.Indices {
			w.walkExpr(i, st)
		}
	case *ast.BinaryExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Y, st)
	case *ast.StarExpr:
		w.walkExpr(e.X, st)
	case *ast.ParenExpr:
		w.walkExpr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(el, st)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Key, st)
		w.walkExpr(e.Value, st)
	case *ast.SliceExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Low, st)
		w.walkExpr(e.High, st)
		w.walkExpr(e.Max, st)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, st)
	}
}
