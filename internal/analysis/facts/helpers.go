package facts

import (
	"go/ast"
	"go/types"
)

// Callee resolves the callee of a call expression to its *types.Func
// (package function, method, or interface method), or nil for builtins,
// conversions, and calls through function-typed variables.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // generic instantiation: NodeVar[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	}
	return nil
}

// IsPkgFunc reports whether f is the package-level function pkgPath.name
// or a method name on a type of pkgPath.
func IsPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name
}

// NamedIn reports whether t (after pointer dereference) is the named
// type pkgPath.name.
func NamedIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// recvNamed returns the named type (after pointer deref) of f's
// receiver, or nil for package-level functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
