package facts

import (
	"go/ast"
	"go/types"
	"strings"
)

// navpPath is the import path of the NavP runtime the fact layer knows.
const navpPath = "repro/internal/navp"

// Annotation bits declared in source with a `//navplint:fact <kinds...>`
// line in a function's doc comment. Annotations mark the *leaf*
// semantics the type system cannot see — which operations constitute a
// durable mutation, which one syncs the persister, which package
// function mints a job namespace — and the fact layer propagates them
// through the call graph. Everything else (channel ops, conn I/O, mutex
// acquisition, agent hops) is detected structurally.
type Annotation struct {
	Durable     bool // mutates node-durable state; its effect must be synced before it is externalized
	Sync        bool // syncs the persister: dominates-exit on every path
	Externalize bool // makes an effect externally visible (conn write, ack, reply)
	Blocking    bool // may block indefinitely
	Hop         bool // performs an agent hop
	Mint        bool // mints a job namespace the caller must release
	Release     bool // releases a job namespace
	Handoff     bool // transfers a namespace's release obligation to another owner
}

// parseAnnotation extracts the navplint:fact bits from a doc comment.
func parseAnnotation(doc *ast.CommentGroup) (Annotation, bool) {
	var ann Annotation
	if doc == nil {
		return ann, false
	}
	found := false
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//navplint:fact")
		if !ok {
			continue
		}
		for _, kind := range strings.Fields(rest) {
			found = true
			switch kind {
			case "durable":
				ann.Durable = true
			case "sync":
				ann.Sync = true
			case "externalize":
				ann.Externalize = true
			case "blocking":
				ann.Blocking = true
			case "hop":
				ann.Hop = true
			case "mint":
				ann.Mint = true
			case "release":
				ann.Release = true
			case "handoff":
				ann.Handoff = true
			}
		}
	}
	return ann, found
}

// BlockKind classifies how an operation can block.
type BlockKind int

const (
	// BlockNone: does not block.
	BlockNone BlockKind = iota
	// BlockHard: may block indefinitely; holding a mutex across it is a
	// lock-discipline violation.
	BlockHard
	// BlockSoft: sync.Cond.Wait — it blocks, but it atomically releases
	// the mutex it was constructed over, so the direct call is the
	// documented condition-variable idiom and is not flagged locally.
	// Callers one level up see it as a hard block.
	BlockSoft
)

// blockingIntrinsic classifies a resolved callee as a blocking
// primitive. The set is deliberately about *indefinite* waits: local
// file I/O (os.WriteFile, os.Rename — the persister's syncs) completes
// without a remote party and is not in it.
func blockingIntrinsic(fn *types.Func) BlockKind {
	if fn == nil || fn.Pkg() == nil {
		return BlockNone
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	recv := recvNamed(fn)
	switch pkg {
	case "time":
		if recv == nil && name == "Sleep" {
			return BlockHard
		}
	case "net":
		if recv == nil && strings.HasPrefix(name, "Dial") {
			return BlockHard
		}
		if recv != nil && recv.Obj().Name() == "Conn" && connIOName(name) {
			return BlockHard // interface method on net.Conn
		}
		if recv != nil && strings.HasSuffix(recv.Obj().Name(), "Conn") && connIOName(name) {
			return BlockHard // *net.TCPConn etc.
		}
	case "io":
		if recv == nil && (name == "ReadFull" || name == "ReadAll" || name == "Copy") {
			return BlockHard
		}
	case "bufio":
		if recv != nil && recv.Obj().Name() == "Reader" && strings.HasPrefix(name, "Read") {
			return BlockHard
		}
		if recv != nil && recv.Obj().Name() == "Writer" && (name == "Flush" || strings.HasPrefix(name, "Write")) {
			return BlockHard
		}
	case "sync":
		if recv != nil && recv.Obj().Name() == "WaitGroup" && name == "Wait" {
			return BlockHard
		}
		if recv != nil && recv.Obj().Name() == "Cond" && name == "Wait" {
			return BlockSoft
		}
	case navpPath:
		if name == "Hop" && recv != nil && recv.Obj().Name() == "Agent" {
			return BlockHard
		}
	}
	return BlockNone
}

func connIOName(name string) bool {
	switch name {
	case "Read", "Write", "ReadFrom", "WriteTo":
		return true
	}
	return false
}

// externalizeIntrinsic reports whether a resolved callee makes bytes
// visible to a remote party: a write on a net.Conn (interface or
// concrete). This is the root "externalize" fact; wrappers (frame
// writers, reply helpers) inherit it through their summaries.
func externalizeIntrinsic(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net" {
		return false
	}
	recv := recvNamed(fn)
	if recv == nil {
		return false
	}
	rn := recv.Obj().Name()
	if rn != "Conn" && !strings.HasSuffix(rn, "Conn") {
		return false
	}
	return fn.Name() == "Write" || fn.Name() == "WriteTo"
}

// releaseIntrinsic reports whether a resolved callee releases a job
// namespace: any method named ReleaseJob or ClearVarsPrefix (concrete
// backend, remote client, or the sched.Backend interface method).
func releaseIntrinsic(fn *types.Func) bool {
	if fn == nil || recvNamed(fn) == nil {
		return false
	}
	return fn.Name() == "ReleaseJob" || fn.Name() == "ClearVarsPrefix"
}

// hopIntrinsic reports whether a resolved callee is (*navp.Agent).Hop.
func hopIntrinsic(fn *types.Func) bool {
	if !IsPkgFunc(fn, navpPath, "Hop") {
		return false
	}
	recv := recvNamed(fn)
	return recv != nil && recv.Obj().Name() == "Agent"
}

// LockOp is a mutex operation at a call site.
type LockOp int

const (
	LockNone LockOp = iota
	LockAcquire
	LockAcquireRead
	LockRelease
	LockReleaseRead
)

// lockIntrinsic classifies a resolved callee as a sync.Mutex/RWMutex
// operation. TryLock variants are ignored: their acquisition is
// conditional on the return value, which a path-insensitive held-set
// cannot represent without false positives.
func lockIntrinsic(fn *types.Func) LockOp {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return LockNone
	}
	recv := recvNamed(fn)
	if recv == nil {
		return LockNone
	}
	switch recv.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return LockNone
	}
	switch fn.Name() {
	case "Lock":
		return LockAcquire
	case "RLock":
		return LockAcquireRead
	case "Unlock":
		return LockRelease
	case "RUnlock":
		return LockReleaseRead
	}
	return LockNone
}

// lockID names the mutex a Lock/Unlock call operates on, stably across
// functions so acquisitions of the same lock correlate:
//
//   - a struct-field mutex is "pkg.Type.field" (instance-insensitive);
//   - a package-level mutex var is "pkg.var";
//   - a local mutex var is "pkg.func.var" (scoped to its function, so it
//     can never alias another function's lock).
//
// The receiver expression is call.Fun's SelectorExpr.X — `d.linkMu` in
// `d.linkMu.Lock()`. Unnameable shapes (map elements, deep chains)
// return "", and the operation is ignored.
func lockID(info *types.Info, call *ast.CallExpr, enclosing string) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		obj, okv := info.Uses[x].(*types.Var)
		if !okv {
			return ""
		}
		if obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name() // package-level var
		}
		// Embedded mutex on a local variable: name it by the variable's
		// type when named, else by the local var.
		if named, okn := derefNamed(obj.Type()); okn {
			return qualifiedType(named) + "." + embeddedName(sel.Sel.Name)
		}
		return obj.Pkg().Path() + "." + enclosing + "." + obj.Name()
	case *ast.SelectorExpr:
		if s, oks := info.Selections[x]; oks && s.Kind() == types.FieldVal {
			if named, okn := derefNamed(s.Recv()); okn {
				return qualifiedType(named) + "." + x.Sel.Name
			}
		}
		// pkg.Var selector
		if id, oki := x.X.(*ast.Ident); oki {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if obj, okv := info.Uses[x.Sel].(*types.Var); okv && obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + obj.Name()
				}
			}
		}
	}
	return ""
}

// embeddedName: `x.Lock()` on a struct embedding sync.Mutex selects the
// embedded field; the field's conventional name is the mutex type.
func embeddedName(method string) string {
	_ = method
	return "Mutex"
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return nil, false
	}
	// A variable whose type *is* sync.Mutex is not an embedding.
	if named.Obj().Pkg().Path() == "sync" {
		return nil, false
	}
	return named, true
}

func qualifiedType(named *types.Named) string {
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}
