package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the expectation comments of a fixture file. Each
// quoted string is a regular expression one diagnostic on that line
// must match:
//
//	nd := ag.Node() // want `crosses a Hop` `second finding`
var wantRe = regexp.MustCompile("// want((?: +`[^`]*`)+)")

var wantArgRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// RunWantTest loads the fixture package in testdata/src/<name>, runs the
// analyzers over it, and compares the diagnostics against the fixture's
// `// want` comments: every diagnostic must be expected on its exact
// line, and every expectation must be matched by some diagnostic. A
// fixture file with no want comments is a true-negative fixture — any
// finding in it fails the test.
func RunWantTest(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := loader.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}

	// Collect expectations from the fixture's comments.
	want := map[string][]*expectation{} // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey(pos)
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, arg[1], err)
					}
					want[key] = append(want[key], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range Run([]*Package{pkg}, analyzers) {
		key := posKey(d.Pos)
		exps := want[key]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, exps := range want {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// assertNoFindings is a helper for framework tests: it fails if any
// diagnostic came out of the run.
func assertNoFindings(t *testing.T, diags []Diagnostic) {
	t.Helper()
	var lines []string
	for _, d := range diags {
		lines = append(lines, d.String())
	}
	if len(lines) > 0 {
		t.Errorf("unexpected findings:\n%s", strings.Join(lines, "\n"))
	}
}
