package analysis

import (
	"repro/internal/analysis/facts"
)

// NewJobRelease returns the jobrelease analyzer.
//
// A job namespace is a durable acquisition: the scheduler mints one per
// attempt (`//navplint:fact mint` on sched.namespace), injects work
// under it, and must release it — ReleaseJob plus ClearVarsPrefix — on
// every exit, or the cluster's per-job Mattern counters, dedup entries,
// and j-prefixed variables leak for the life of the deployment
// (DESIGN.md §12's drain-ordered cleanup).
//
// The obligation starts at the call to a mint-annotated function and is
// bound to the variable the namespace was assigned to. Any path that
// reaches an exit while the obligation is pending reports at the mint.
// A release clears it when the namespace variable appears in the
// releasing call's arguments — directly (cl.ReleaseJob(ns)) or through
// a helper whose summary releases (s.cleanup(ns, failed)); a release
// that *may* not run to completion (cleanup's drain-timeout early
// return) still clears, matching the documented bounded-leak contract.
//
// The obligation can also be *transferred* instead of discharged: a
// call to a `//navplint:fact handoff` function naming the namespace —
// Scheduler.enqueueReap handing an undrained namespace to the
// background reaper, a migration handing a checkpointed agent to its
// destination — moves ownership to the new party (whose own exit paths
// are analyzed separately) and clears the obligation here, exactly as
// the runtime protocol does (DESIGN.md §16.1's replay-ownership rule).
//
// Work.Run implementations inject under a namespace but never mint one,
// so they carry no obligation: the scheduler owns cleanup, Run only
// computes. A helper that intentionally mints and hands the namespace
// off unreleased through an unannotated path needs a
// `//lint:ignore jobrelease <reason>`.
func NewJobRelease() *Analyzer {
	a := &Analyzer{
		Name: "jobrelease",
		Doc: "flags exit paths on which a minted job namespace is never released " +
			"(ReleaseJob/ClearVarsPrefix) — the namespace-leak rule",
	}
	a.Run = func(pass *Pass) {
		for _, sum := range pass.Facts.PackageSummaries(pass.Pkg.Path) {
			for _, f := range sum.Findings {
				if f.Code == facts.FindLeak {
					pass.Reportf(f.Pos,
						"job namespace minted here is not released on every exit path; "+
							"every attempt must end in ReleaseJob/ClearVarsPrefix or the "+
							"cluster leaks its counters and variables")
				}
			}
		}
	}
	return a
}
