package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package with its syntax.
type Package struct {
	// Path is the import path ("repro/internal/navp", or a synthetic
	// "fixture/..." path for testdata packages).
	Path string
	// Dir is the directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of the enclosing Go module from
// source, with no dependency outside the standard library. Module
// imports are resolved recursively from the module directory; standard
// library imports are delegated to the stdlib source importer.
type Loader struct {
	ModulePath string
	ModuleDir  string

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*loadResult
}

type loadResult struct {
	pkg  *Package
	err  error
	busy bool // import cycle guard
}

// NewLoader creates a loader rooted at the module containing dir (dir or
// any parent must hold a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  root,
		fset:       fset,
		std:        std,
		cache:      map[string]*loadResult{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// inModule reports whether path names a package of the loaded module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// Load type-checks the package at the given module import path (or
// returns the cached result).
func (l *Loader) Load(path string) (*Package, error) {
	if !l.inModule(path) {
		return nil, fmt.Errorf("analysis: %s is not in module %s", path, l.ModulePath)
	}
	return l.load(path, l.dirFor(path))
}

// LoadDir type-checks the package in dir under a synthetic import path —
// used for testdata fixture packages that live outside the module tree
// proper.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.load(asPath, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if r, ok := l.cache[path]; ok {
		if r.busy {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return r.pkg, r.err
	}
	r := &loadResult{busy: true}
	l.cache[path] = r
	r.pkg, r.err = l.loadUncached(path, dir)
	r.busy = false
	return r.pkg, r.err
}

func (l *Loader) loadUncached(path, dir string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter adapts the Loader to types.Importer: module packages
// are loaded from module source, everything else (the standard library)
// through the stdlib source importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, im.ModuleDir, 0)
}

func (im *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(im)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.inModule(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// Expand resolves package patterns relative to the module root into
// import paths. "./..." (or any path ending in "/...") walks
// directories; other patterns name a single package directory. Vendor,
// testdata, and hidden directories are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" {
			pat = "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			if l.inModule(pat) {
				dir = l.dirFor(pat)
			} else {
				dir = filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
			}
		}
		dir = filepath.Clean(dir)
		if !recursive {
			p, err := l.pathFor(dir)
			if err != nil {
				return nil, err
			}
			add(p)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				p, err := l.pathFor(path)
				if err != nil {
					return err
				}
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// pathFor maps a directory under the module root to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
