// Out-of-core computing with DSC — the paper's Table 2 scenario.
//
// When a problem's working set exceeds one machine's physical memory,
// the sequential program thrashes its virtual memory. The DSC
// transformation alone — no parallelism, just one migrating computation
// chasing data distributed over a few workstations — removes the paging
// entirely, because each machine's slice fits in RAM. The paper: "with a
// small amount of work, a sequential program can efficiently solve large
// problems that cannot fit in the main memory of one computer."
//
// This example reproduces the effect at a reduced scale: a matrix
// multiplication whose three matrices overflow a deliberately small
// memory, run (a) sequentially through the LRU pager and (b) as 1-D DSC
// on eight machines. Run with:
//
//	go run ./examples/outofcore
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/matmul"
	"repro/internal/navp"
)

func main() {
	n := flag.Int("n", 2048, "matrix order")
	block := flag.Int("block", 128, "algorithmic block order")
	pes := flag.Int("p", 8, "machines for the DSC run")
	flag.Parse()

	hw := machine.SunBlade100()
	// Shrink memory below one matrix so the B streams thrash, the same
	// regime as the paper's N=9216 on 256 MB machines.
	matrixBytes := int64(*n) * int64(*n) * int64(hw.ElemBytes)
	hw.MemoryBytes = matrixBytes / 2

	run := func(stage matmul.Stage, p int, paged bool) float64 {
		res, err := matmul.Run(stage, matmul.Config{
			N: *n, BS: *block, P: p, Phantom: true, Paged: paged,
			HW: hw, NavP: navp.DefaultConfig(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res.Seconds
	}

	fmt.Printf("Problem: %d×%d multiply, %d MB of matrices, %d MB of RAM per machine\n\n",
		*n, *n, 3*matrixBytes>>20, hw.MemoryBytes>>20)

	// The fair baseline, the paper's way: fit a cubic to in-core sizes.
	smallNs := []int{512, 640, 768, 896}
	var smallTimes []float64
	for _, sn := range smallNs {
		res, err := matmul.Run(matmul.Sequential, matmul.Config{
			N: sn, BS: 128, P: 1, Phantom: true, HW: hw, NavP: navp.DefaultConfig(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		smallTimes = append(smallTimes, res.Seconds)
	}
	baseline, err := fit.SequentialBaseline(smallNs, smallTimes, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	thrash := run(matmul.Sequential, 1, true)
	dsc := run(matmul.DSC1D, *pes, false)

	fmt.Printf("%-44s %10.1fs\n", "sequential, in-core baseline (cubic fit):", baseline)
	fmt.Printf("%-44s %10.1fs  (%.1f× the baseline — thrashing)\n",
		"sequential, paging on one machine:", thrash, thrash/baseline)
	fmt.Printf("%-44s %10.1fs  (%.2f× the baseline)\n",
		fmt.Sprintf("NavP 1-D DSC on %d machines:", *pes), dsc, dsc/baseline)
	fmt.Printf("\nDSC runs %.1f× faster than the thrashing sequential program\n", thrash/dsc)
	fmt.Println("without exploiting any parallelism at all: it simply trades paging")
	fmt.Println("against a modest amount of network communication (paper §2).")
}
