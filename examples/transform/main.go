// Mechanical parallelization of an arbitrary computation with the
// transformation framework (internal/core) — the paper's methodology
// applied beyond matrix multiplication.
//
// The workload is a generic data-parallel sweep: R independent tasks,
// each touching C column-partitioned data sets in order (think: R
// records flowing through C pipeline stations whose reference data is
// too big to replicate). Starting from the sequential item list, the
// program below mechanically derives, executes, and times all four
// schedules of the paper's Figure 1:
//
//	(a) sequential         — one thread, one PE
//	(b) DSC                — one migrating thread over C PEs
//	(c) + Pipelining       — one thread per record, staggered
//	(d) + Phase shifting   — threads enter at distinct PEs
//
// Before each run, core.Check statically verifies that the transformed
// plan preserves every data dependence of the sequential program — the
// safety net that makes the steps "mechanical and straightforward to
// apply". Run with:
//
//	go run ./examples/transform
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/navp"
)

func main() {
	const (
		rows  = 12   // records
		cols  = 4    // stations / PEs
		flops = 55e6 // ~0.5 s of work per visit on the modeled CPU
		carry = 4096 // bytes each thread carries between stations
	)

	makeItems := func() []core.Item {
		return core.GridSweep(rows, cols, flops, func(col int) int { return col })
	}
	groupByRow := func(it core.Item) string {
		var i, j int
		fmt.Sscanf(it.ID, "it(%d,%d)", &i, &j)
		return fmt.Sprintf("record%d", i)
	}

	plans := []struct {
		name string
		pes  int
		plan *core.Plan
	}{
		{"(a) sequential", 1,
			core.DSC("sweep", core.GridSweep(rows, cols, flops, func(int) int { return 0 }), carry)},
		{"(b) DSC", cols,
			core.DSC("sweep", makeItems(), carry)},
		{"(c) + pipelining", cols,
			core.Pipeline(core.DSC("sweep", makeItems(), carry), groupByRow)},
		{"(d) + phase shifting", cols,
			core.PhaseShift(core.Pipeline(core.DSC("sweep", makeItems(), carry), groupByRow), nil)},
	}

	fmt.Printf("Figure 1, measured: %d records × %d stations, %.1f Mflop per visit\n\n",
		rows, cols, flops/1e6)
	fmt.Printf("%-22s %-9s %-9s %10s %9s\n", "schedule", "threads", "PEs", "makespan", "speedup")

	var seq float64
	for _, p := range plans {
		// The mechanical safety check: the transformation must not have
		// reordered any conflicting accesses.
		violations, err := core.Check(p.plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(violations) != 0 {
			fmt.Fprintf(os.Stderr, "%s: dependence violations: %v\n", p.name, violations)
			os.Exit(1)
		}

		sys := navp.NewSim(navp.DefaultConfig(), machine.SunBlade100(), p.pes)
		if err := core.Execute(p.plan, sys, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t := sys.VirtualTime()
		if seq == 0 {
			seq = t
		}
		fmt.Printf("%-22s %-9d %-9d %9.2fs %8.2f×\n",
			p.name, len(p.plan.Threads), p.pes, t, seq/t)
	}

	fmt.Println("\nEach plan was derived from its predecessor by one mechanical")
	fmt.Println("transformation, statically checked, and is independently runnable —")
	fmt.Println("the incremental path of the paper, on a workload that is not")
	fmt.Println("matrix multiplication.")
}
