// NavP over real sockets: the MESSENGERS architecture itself.
//
// The other examples run on the calibrated simulator or on goroutines
// inside one scheduler. This one starts a cluster of daemons listening
// on loopback TCP ports and lets a migrating computation hop between
// them with its state gob-encoded on the wire — code never moves, state
// does, exactly as the paper describes MESSENGERS (§2).
//
// The computation is the paper's 1-D DSC matrix multiplication
// (Figure 5) at row granularity: the carrier hauls one row of A through
// the column-distributed B and C, then wraps around for the next row.
// Termination is detected with Mattern's four-counter algorithm over
// the same sockets.
//
// Run with:
//
//	go run ./examples/wire
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/matrix"
	"repro/internal/wire"
)

// carrierState is everything that travels: the row being processed and
// the queue of rows still to do. (On a real cluster the remaining rows
// would live on node 0; keeping them in the carrier keeps the example
// self-contained.)
type carrierState struct {
	Mi, Rows int
	Row      []float64
	Pending  [][]float64
}

func main() {
	const n, pes = 9, 3

	wire.RegisterState(&carrierState{})
	wire.Register("RowCarrier", func(ctx *wire.Ctx) wire.Verdict {
		st := ctx.State().(*carrierState)
		bcols := ctx.Get("Bcols").([][]float64)
		c := make([]float64, len(bcols))
		for j, col := range bcols {
			for k, a := range st.Row {
				c[j] += a * col[k]
			}
		}
		ctx.Set(fmt.Sprintf("Crow:%d", st.Mi), c)
		if ctx.NodeID() < ctx.Nodes()-1 {
			return ctx.HopTo(ctx.NodeID() + 1) // chase the next B/C columns
		}
		if len(st.Pending) > 0 {
			ctx.SetState(&carrierState{Mi: st.Mi + 1, Rows: st.Rows,
				Row: st.Pending[0], Pending: st.Pending[1:]})
			return ctx.HopTo(0) // wrap around for the next row
		}
		return ctx.Done()
	})

	a, b := matrix.RandomPair(matrix.NewSeeded(17), n)

	cl, err := wire.NewCluster(pes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()

	// Distribute B by column chunks: node(j) holds B(*, j-chunk).
	colsPerPE := n / pes
	for pe := 0; pe < pes; pe++ {
		bcols := make([][]float64, colsPerPE)
		for lj := range bcols {
			col := make([]float64, n)
			for k := 0; k < n; k++ {
				col[k] = b.At(k, pe*colsPerPE+lj)
			}
			bcols[lj] = col
		}
		cl.Set(pe, "Bcols", bcols)
	}

	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = append([]float64(nil), a.Row(i)...)
	}
	start := time.Now()
	cl.Inject(0, "RowCarrier", &carrierState{Mi: 0, Rows: n, Row: rows[0], Pending: rows[1:]})
	if err := cl.Wait(30 * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	got := matrix.NewDense(n, n)
	for pe := 0; pe < pes; pe++ {
		for i := 0; i < n; i++ {
			crow := cl.Get(pe, fmt.Sprintf("Crow:%d", i)).([]float64)
			for lj, v := range crow {
				got.Set(i, pe*colsPerPE+lj, v)
			}
		}
	}
	want := matrix.Mul(a, b)
	fmt.Printf("1-D DSC matrix multiply over %d TCP daemons: %d hops of gob-encoded state\n",
		pes, n*(pes-1)+(n-1))
	fmt.Printf("result max |Δ| vs reference: %g (completed in %v)\n", got.MaxAbsDiff(want), elapsed.Round(time.Millisecond))
	if got.MaxAbsDiff(want) > 1e-9 {
		os.Exit(1)
	}
	fmt.Println("the computation migrated; the data (mostly) stayed put.")
}
