// Quickstart: the Navigational Programming model in one page.
//
// A NavP program is made of self-migrating computations (Agents) that
// hop() across a network of PEs, carrying small private data in agent
// variables, reading and writing large resident data through node
// variables, and synchronizing with node-local counting events — the
// programming model of the MESSENGERS system from the paper.
//
// This example computes a distributed dot product: the two vectors are
// distributed across three PEs as node variables, and one migrating
// computation chases them, accumulating the partial sums in an agent
// variable it carries — the DSC (distributed sequential computing)
// pattern of §2. A second agent demonstrates events.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/navp"
)

func main() {
	const (
		pes       = 3
		perPE     = 4 // vector elements resident on each PE
		elemBytes = 8
	)

	// A simulated cluster of three workstations (the paper's testbed
	// model). navp.NewReal(cfg, pes) would run the same program with real
	// goroutines instead of virtual time.
	sys := navp.NewSim(navp.DefaultConfig(), machine.SunBlade100(), pes)

	// Distribute the vectors: slice j lives on PE j as node variables
	// "x" and "y". Node variables stay put; agents come to them.
	next := 1.0
	for pe := 0; pe < pes; pe++ {
		x := make([]float64, perPE)
		y := make([]float64, perPE)
		for i := range x {
			x[i] = next
			y[i] = 2
			next++
		}
		sys.Node(pe).Set("x", x)
		sys.Node(pe).Set("y", y)
	}

	// The migrating computation: visit every PE, accumulate the local
	// partial product into the carried agent variable "sum", and leave
	// the result as a node variable on the last PE.
	sys.Inject(0, "DotCarrier", func(ag *navp.Agent) {
		sum := 0.0
		for pe := 0; pe < pes; pe++ {
			ag.Hop(pe) // chase the large data; carry the small data
			x := navp.NodeVar[[]float64](ag.Node(), "x")
			y := navp.NodeVar[[]float64](ag.Node(), "y")
			ag.Compute(float64(2*len(x)), func() {
				for i := range x {
					sum += x[i] * y[i]
				}
			})
			ag.Set("sum", sum, elemBytes) // agent variables travel on hops
		}
		ag.Node().Set("result", sum)
		ag.SignalEvent("done") // wake the reporter waiting on this node
	})

	// A second computation, injected independently, waits on the last PE
	// for the result — signalEvent/waitEvent are the NavP
	// synchronization primitives, and they are node-local.
	sys.Inject(pes-1, "Reporter", func(ag *navp.Agent) {
		ag.WaitEvent("done")
		result := navp.NodeVar[float64](ag.Node(), "result")
		fmt.Printf("dot product  = %v\n", result)
		fmt.Printf("finish time  = %.6fs of simulated time on %d PEs\n", ag.Now(), pes)
	})

	if err := sys.Run(); err != nil {
		panic(err)
	}

	// 2·(1+2+...+12) = 156.
	fmt.Println("expected     = 156")
}
