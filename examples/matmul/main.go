// The paper's case study, end to end: incremental parallelization of
// matrix multiplication through all six transformation stages (§3),
// with every intermediate program verified against the sequential
// reference and timed on the simulated testbed.
//
// This is the walkthrough behind Tables 1, 3, and 4: each stage is a
// small mechanical step from its predecessor, each runs correctly, and
// each improves (or at worst matches) the one before — the central
// claim of the methodology.
//
// Run with:
//
//	go run ./examples/matmul            # verify + time at N=768
//	go run ./examples/matmul -n 1536    # the paper's smallest size
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/matmul"
	"repro/internal/matrix"
	"repro/internal/navp"
)

func main() {
	n := flag.Int("n", 768, "matrix order (multiple of block·p)")
	block := flag.Int("block", 128, "algorithmic block order")
	p := flag.Int("p", 3, "PEs per network dimension")
	flag.Parse()

	baseCfg := matmul.Config{
		N: *n, BS: *block, P: *p,
		HW:   machine.SunBlade100(),
		NavP: navp.DefaultConfig(),
		Seed: 7,
	}

	// The ground truth both for correctness and for speedups.
	a, b := matmul.Inputs(baseCfg)
	want := matrix.Mul(a, b)

	fmt.Printf("Incremental parallelization of %d×%d matrix multiplication "+
		"(block %d, %d PEs per dimension)\n\n", *n, *n, *block, *p)
	fmt.Printf("%-22s %-6s %12s %10s   %s\n", "stage", "PEs", "time", "speedup", "transformation applied")

	descriptions := map[matmul.Stage]string{
		matmul.Sequential: "— (the starting point, Fig 2)",
		matmul.DSC1D:      "DSC: distribute data, insert hops (Fig 5)",
		matmul.Pipeline1D: "Pipelining: one carrier per row (Fig 7)",
		matmul.Phase1D:    "Phase shifting: staggered entry (Fig 9)",
		matmul.DSC2D:      "DSC again, second dimension (Fig 11)",
		matmul.Pipeline2D: "Pipelining in both dimensions (Fig 13)",
		matmul.Phase2D:    "Phase shifting in both dimensions (Fig 15)",
	}

	var seqTime float64
	for _, stage := range matmul.Stages {
		res, err := matmul.Run(stage, baseCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if d := res.C.MaxAbsDiff(want); d > 1e-9 {
			fmt.Fprintf(os.Stderr, "%v: WRONG RESULT (max |Δ| = %g)\n", stage, d)
			os.Exit(1)
		}
		if stage == matmul.Sequential {
			seqTime = res.Seconds
		}
		fmt.Printf("%-22s %-6d %11.2fs %9.2f✓   %s\n",
			stage, res.PEs, res.Seconds, seqTime/res.Seconds, descriptions[stage])
	}

	fmt.Println("\nEvery stage produced the exact same product (✓ = verified).")
	fmt.Println("Each intermediate program is production-usable — stop whenever")
	fmt.Println("the speedup is good enough; that is the point of the methodology.")
}
