// Mechanically parallelized loop nests, end to end: every program in
// this demo was emitted by `go run ./cmd/navpgen` from a sequential,
// annotated Go loop nest (internal/gen/nests), then compiled like any
// other package. For each nest the demo runs the three generated
// variants — DSC, pipelined, phase-shifted — on the simulated Sun Blade
// 100 cluster and prints the virtual-time makespans, reproducing the
// paper's Figure 1 progression from generated rather than hand-written
// code. Each run also re-checks the result against the sequential nest,
// so every printed line is a verified schedule. Run with:
//
//	go run ./examples/navpgen
package main

import (
	"fmt"
	"os"

	"repro/internal/gen/genrun"
	_ "repro/internal/gen/nests" // register the generated programs
	"repro/internal/machine"
	"repro/internal/navp"
)

func main() {
	const pes = 4
	fmt.Printf("navpgen-generated schedules on %d simulated PEs (oracle-checked)\n\n", pes)
	fmt.Printf("%-22s %-10s %12s %9s\n", "program", "dist", "makespan", "speedup")

	var nest string
	var base float64
	for _, p := range genrun.Programs() {
		sizes := make([]int, len(p.SizeParams))
		for i := range sizes {
			sizes[i] = 48
		}
		sys := navp.NewSim(navp.DefaultConfig(), machine.SunBlade100(), pes)
		if err := p.Run(sys, pes, sizes, 1); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Name(), err)
			os.Exit(1)
		}
		mk := float64(sys.VirtualTime())
		if p.Nest != nest {
			if nest != "" {
				fmt.Println()
			}
			nest, base = p.Nest, mk
		}
		fmt.Printf("%-22s %-10s %12.4g %8.2fx\n", p.Name(), p.Dist, mk, base/mk)
	}
}
