// Gauss-Seidel relaxation parallelized with the NavP transformations —
// the methodology beyond matrix multiplication.
//
// Successive relaxation sweeps carry true dependences, so this workload
// exercises a different corner of the methodology than the matmul case
// study: DSC applies directly, Pipelining applies across *iterations*
// (sweep t+1 chases sweep t one chunk behind, synchronized by node-local
// events and backward-flowing GhostCarrier messengers), and Phase
// shifting is illegal — the dependence checker proves it, see the
// internal/stencil tests.
//
// Run with:
//
//	go run ./examples/stencil
//	go run ./examples/stencil -rows 1538 -cols 4096 -iters 9 -p 6
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/navp"
	"repro/internal/stencil"
)

func main() {
	rows := flag.Int("rows", 770, "grid rows incl. boundary (rows-2 divisible by p)")
	cols := flag.Int("cols", 2048, "grid columns incl. boundary")
	iters := flag.Int("iters", 6, "Gauss-Seidel sweeps")
	p := flag.Int("p", 3, "PEs")
	flag.Parse()

	cfg := stencil.Config{
		Rows: *rows, Cols: *cols, Iters: *iters, P: *p,
		HW:   machine.SunBlade100(),
		NavP: navp.DefaultConfig(),
		Seed: 5,
	}
	want := stencil.Reference(cfg)

	fmt.Printf("Gauss-Seidel relaxation: %d×%d grid, %d sweeps, %d PEs\n\n",
		*rows, *cols, *iters, *p)
	fmt.Printf("%-16s %-5s %10s %9s   %s\n", "method", "PEs", "time", "speedup", "note")

	var seq float64
	for _, m := range []stencil.Method{stencil.Sequential, stencil.DSC, stencil.Pipelined} {
		res, err := stencil.Run(m, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if d := res.Grid.MaxAbsDiff(want); d != 0 {
			fmt.Fprintf(os.Stderr, "%v: result differs by %g\n", m, d)
			os.Exit(1)
		}
		if m == stencil.Sequential {
			seq = res.Seconds
		}
		pes := *p
		if m == stencil.Sequential {
			pes = 1
		}
		note := map[stencil.Method]string{
			stencil.Sequential: "the starting point",
			stencil.DSC:        "one migrating sweep; result bit-exact",
			stencil.Pipelined:  "sweeps overlap across PEs; result bit-exact",
		}[m]
		fmt.Printf("%-16s %-5d %9.2fs %8.2f×   %s\n", m, pes, res.Seconds, seq/res.Seconds, note)
	}

	fmt.Println("\nPhase shifting is NOT applied: a sweep cannot enter the grid")
	fmt.Println("mid-domain (each chunk depends on its predecessor), and the")
	fmt.Println("dependence checker rejects the rotated plan — the methodology's")
	fmt.Println("safety check working as intended.")
}
